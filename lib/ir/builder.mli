(** Imperative construction DSL for IR programs.

    Workload generators and the runtime library build programs through
    this module; it guarantees well-formed output (every block
    terminated, fresh registers, valid labels), which [Validate]
    double-checks. Typed helpers return the destination register where
    one exists. *)

open Types

(** A program under construction. *)
type t

(** A function under construction. *)
type fb

val program : unit -> t

(** Declare a global of [size] bytes (positive multiple of 8) with
    optional word-indexed initial values. *)
val global : t -> string -> size:int -> ?init:(int * int) list -> unit -> unit

(** [func t name ~nparams build] adds a function whose body [build]
    emits; parameters are registers [0 .. nparams-1]. Raises if any block
    is left unterminated. *)
val func : t -> string -> nparams:int -> (fb -> unit) -> unit

val set_main : t -> string -> unit

(** Assemble the program. Raises when no main was set. *)
val finish : t -> Prog.t

(** {2 Registers, blocks, raw emission} *)

val fresh : fb -> reg
val param : fb -> int -> reg

(** Create a new (empty, unterminated) block; returns its label. *)
val block : fb -> label

(** Make the given block current for subsequent emission. *)
val switch_to : fb -> label -> unit

(** Append an instruction to the current block. *)
val emit : fb -> instr -> unit

(** {2 Typed instruction helpers} *)

val bin : fb -> binop -> operand -> operand -> reg
val add : fb -> operand -> operand -> reg
val sub : fb -> operand -> operand -> reg
val mul : fb -> operand -> operand -> reg
val cmp : fb -> cmpop -> operand -> operand -> reg
val mov : fb -> operand -> reg

(** Materialize an immediate. *)
val imm : fb -> int -> reg

(** Address of a global. *)
val la : fb -> string -> reg

val load : fb -> reg -> int -> reg
val store : fb -> reg -> int -> operand -> unit
val call : fb -> string -> operand list -> reg
val call_void : fb -> string -> operand list -> unit
val atomic_rmw : fb -> binop -> reg -> int -> operand -> reg
val cas : fb -> reg -> int -> expected:operand -> desired:operand -> reg
val fence : fb -> unit

(** Explicit-persistency ops: write a line back to NVM / drain pending
    flushes. The explicit-flush compiler mode inserts these; workloads
    and tests may also emit them directly. *)
val flush : fb -> reg -> int -> unit

val pfence : fb -> unit

(** {2 Terminators and structured control} *)

val jmp : fb -> label -> unit
val br : fb -> reg -> ifso:label -> ifnot:label -> unit
val ret : fb -> operand option -> unit

(** Structured counted loop over [from, below); [body] receives the
    induction register (which it must not write) and may create blocks.
    Returns the induction register. *)
val loop : fb -> from:operand -> below:operand -> (reg -> unit) -> reg

(** If-then-else on [cond <> 0]; both branches are joined automatically
    and must leave their final block unterminated. *)
val if_ : fb -> reg -> then_:(unit -> unit) -> else_:(unit -> unit) -> unit
