(** Commit events, packed into a single native int each.

    The timing simulator replays millions of events per configuration, so
    the encoding is allocation-free: low 4 bits = kind tag, remaining bits
    = payload (a byte address for memory events, the static boundary id for
    boundary events, 0 otherwise). *)

type kind =
  | Alu       (** any non-memory instruction, including branches/calls *)
  | Load
  | Store
  | Ckpt      (** register checkpoint: a store to the NVM checkpoint area *)
  | Boundary  (** region boundary commit *)
  | Fence
  | Atomic    (** atomic RMW / CAS: sync point that reads and writes memory *)
  | Flush     (** clwb-like line writeback; payload = byte address *)
  | Pfence    (** persist fence: drains pending flushes *)

let tag_of_kind = function
  | Alu -> 0 | Load -> 1 | Store -> 2 | Ckpt -> 3 | Boundary -> 4 | Fence -> 5
  | Atomic -> 6 | Flush -> 7 | Pfence -> 8

let kind_of_tag = function
  | 0 -> Alu | 1 -> Load | 2 -> Store | 3 -> Ckpt | 4 -> Boundary | 5 -> Fence
  | 6 -> Atomic | 7 -> Flush | 8 -> Pfence
  | t -> invalid_arg (Printf.sprintf "Event.kind_of_tag: %d" t)

let encode kind ~payload = (payload lsl 4) lor tag_of_kind kind

let kind ev = kind_of_tag (ev land 15)
let payload ev = ev lsr 4

(* Fast-path tags for the simulator's hot loop (avoids variant match). *)
let tag ev = ev land 15
let tag_alu = 0
let tag_load = 1
let tag_store = 2
let tag_ckpt = 3
let tag_boundary = 4
let tag_fence = 5
let tag_atomic = 6
let tag_flush = 7
let tag_pfence = 8

let writes_nvm ev =
  let t = tag ev in
  t = tag_store || t = tag_ckpt || t = tag_atomic

let to_string ev =
  match kind ev with
  | Alu -> "alu"
  | Load -> Printf.sprintf "load  0x%x" (payload ev)
  | Store -> Printf.sprintf "store 0x%x" (payload ev)
  | Ckpt -> Printf.sprintf "ckpt  0x%x" (payload ev)
  | Boundary -> Printf.sprintf "boundary #%d" (payload ev)
  | Fence -> "fence"
  | Atomic -> Printf.sprintf "atomic 0x%x" (payload ev)
  | Flush -> Printf.sprintf "flush 0x%x" (payload ev)
  | Pfence -> "pfence"
