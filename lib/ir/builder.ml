(** Imperative construction DSL for IR programs.

    Workload generators and the runtime library build programs through this
    module; it guarantees well-formed output (every block terminated, fresh
    registers, labels valid) which [Validate] then double-checks. *)

open Types

type pending_block = {
  mutable rev_instrs : instr list;
  mutable pterm : term option;
}

type fb = {
  fname : string;
  fnparams : int;
  mutable next_reg : int;
  mutable pblocks : pending_block array;
  mutable nblocks : int;
  mutable current : label;
}

type t = {
  mutable rev_globals : Prog.global list;
  mutable rev_funcs : (string * Prog.func) list;
  mutable bmain : string option;
}

let program () = { rev_globals = []; rev_funcs = []; bmain = None }

let global t name ~size ?(init = []) () =
  if size <= 0 || size mod 8 <> 0 then
    invalid_arg "Builder.global: size must be a positive multiple of 8";
  t.rev_globals <- { Prog.gname = name; size; init } :: t.rev_globals

(* ---- function building ---- *)

let new_pending () = { rev_instrs = []; pterm = None }

let fresh fb =
  let r = fb.next_reg in
  fb.next_reg <- r + 1;
  r

let param fb i =
  if i < 0 || i >= fb.fnparams then invalid_arg "Builder.param: out of range";
  i

let block fb =
  if fb.nblocks = Array.length fb.pblocks then begin
    let bigger = Array.make (max 8 (2 * fb.nblocks)) (new_pending ()) in
    Array.blit fb.pblocks 0 bigger 0 fb.nblocks;
    fb.pblocks <- bigger
  end;
  let l = fb.nblocks in
  fb.pblocks.(l) <- new_pending ();
  fb.nblocks <- l + 1;
  l

let switch_to fb l =
  if l < 0 || l >= fb.nblocks then invalid_arg "Builder.switch_to: bad label";
  fb.current <- l

let emit fb ins =
  let pb = fb.pblocks.(fb.current) in
  if pb.pterm <> None then
    invalid_arg
      (Printf.sprintf "Builder.emit: block %d of %s already terminated"
         fb.current fb.fname);
  pb.rev_instrs <- ins :: pb.rev_instrs

let terminate fb tm =
  let pb = fb.pblocks.(fb.current) in
  if pb.pterm <> None then
    invalid_arg
      (Printf.sprintf "Builder.terminate: block %d of %s already terminated"
         fb.current fb.fname);
  pb.pterm <- Some tm

(* ---- typed instruction helpers; each returns the destination register
   where one exists ---- *)

let bin fb op a b =
  let dst = fresh fb in
  emit fb (Bin (op, dst, a, b));
  dst

let add fb a b = bin fb Add a b
let sub fb a b = bin fb Sub a b
let mul fb a b = bin fb Mul a b

let cmp fb op a b =
  let dst = fresh fb in
  emit fb (Cmp (op, dst, a, b));
  dst

let mov fb src =
  let dst = fresh fb in
  emit fb (Mov (dst, src));
  dst

let imm fb v = mov fb (Imm v)

let la fb sym =
  let dst = fresh fb in
  emit fb (La (dst, sym));
  dst

let load fb base off =
  let dst = fresh fb in
  emit fb (Load (dst, base, off));
  dst

let store fb base off src = emit fb (Store (base, off, src))

let call fb callee args =
  let dst = fresh fb in
  emit fb (Call (callee, args, Some dst));
  dst

let call_void fb callee args = emit fb (Call (callee, args, None))

let atomic_rmw fb op base off src =
  let dst = fresh fb in
  emit fb (Atomic_rmw (op, dst, base, off, src));
  dst

let cas fb base off ~expected ~desired =
  let dst = fresh fb in
  emit fb (Cas (dst, base, off, expected, desired));
  dst

let fence fb = emit fb Fence
let flush fb base off = emit fb (Flush (base, off))
let pfence fb = emit fb Pfence

(* ---- terminators ---- *)

let jmp fb l = terminate fb (Jmp l)
let br fb cond ~ifso ~ifnot = terminate fb (Br (cond, ifso, ifnot))
let ret fb op = terminate fb (Ret op)

(** Structured counted loop: [loop fb ~from ~below body] runs [body] with
    the induction variable register for i in [from, below). The induction
    variable lives in a dedicated register that body must not write. *)
let loop fb ~(from : operand) ~(below : operand) body =
  let header = block fb in
  let body_l = block fb in
  let exit_l = block fb in
  let ivar = fresh fb in
  emit fb (Mov (ivar, from));
  jmp fb header;
  switch_to fb header;
  let c = cmp fb Lt (Reg ivar) below in
  br fb c ~ifso:body_l ~ifnot:exit_l;
  switch_to fb body_l;
  body ivar;
  (* body may have moved the current block; increment wherever we are *)
  emit fb (Bin (Add, ivar, Reg ivar, Imm 1));
  jmp fb header;
  switch_to fb exit_l;
  ivar

(** If-then-else on [cond <> 0]; both branches must leave their last block
    unterminated (they are joined automatically). *)
let if_ fb cond ~then_ ~else_ =
  let tl = block fb in
  let el = block fb in
  let join = block fb in
  br fb cond ~ifso:tl ~ifnot:el;
  switch_to fb tl;
  then_ ();
  jmp fb join;
  switch_to fb el;
  else_ ();
  jmp fb join;
  switch_to fb join

(* ---- finishing ---- *)

let func t name ~nparams build =
  let fb =
    {
      fname = name;
      fnparams = nparams;
      next_reg = nparams;
      pblocks = Array.init 8 (fun _ -> new_pending ());
      nblocks = 0;
      current = 0;
    }
  in
  let entry = block fb in
  switch_to fb entry;
  build fb;
  let blocks =
    Array.init fb.nblocks (fun i ->
        let pb = fb.pblocks.(i) in
        match pb.pterm with
        | None ->
          invalid_arg
            (Printf.sprintf "Builder.func: block %d of %s not terminated" i name)
        | Some term -> { Prog.instrs = List.rev pb.rev_instrs; term })
  in
  let f =
    { Prog.name; nparams; nregs = fb.next_reg; blocks }
  in
  t.rev_funcs <- (name, f) :: t.rev_funcs

let set_main t name = t.bmain <- Some name

let finish t =
  let main =
    match t.bmain with
    | Some m -> m
    | None -> invalid_arg "Builder.finish: main function not set"
  in
  {
    Prog.globals = List.rev t.rev_globals;
    funcs = List.rev t.rev_funcs;
    main;
  }
