(** Minimal flush/fence insertion for the explicit-persistency compile
    mode ([persist_mode = Explicit]).

    Driven by [Persist_order]: the pass discharges exactly the durability
    obligations the analysis proves can reach a commit point, and nothing
    else — [Persist_check] then independently re-derives the analysis on
    the output, translation-validation style, so an insertion bug is a
    diagnostic rather than lost data after a crash.

    Placement strategy, in two phases over each function:

    - Phase A: a store whose symbolic address is not an [Exact] class
      (heap-like [Within]/[Any] pointers) gets one [Flush] of the same
      base+displacement immediately after it, while the address register
      is still live. Only the block-local syntactic rule of the analysis
      can prove such a line covered, so adjacency is the only safe spot.

    - Phase B: re-analyze; at every commit point (region boundary,
      commit call, return) with a non-empty obligation state, insert the
      line writebacks for the *dirty* [Exact] classes — one flush per
      class (dedup: many stores to one class cost one flush; overwritten
      stores cost none), one address materialization per global — and a
      single [Pfence]. Boundaries keep their checkpoint run attached
      (the sequence goes in front of the [Ckpt]s). A commit sitting at
      the top of its block — a loop header or other join — instead
      pushes the sequence to the end of each predecessor, using that
      predecessor's own out-state: on a back edge (the header dominates
      the predecessor, [Persist_order.is_back_edge]) only loop-carried
      obligations are flushed each iteration, while loop-entry
      obligations are discharged once on the entry edge — the
      dominator-based loop hoisting of the insertion algorithm. *)

open Cwsp_ir
open Cwsp_analysis

(* Flushes for the Dirty Exact classes of [st], one per class, grouped so
   each global's address is materialized once; then one Pfence iff any
   obligation (dirty or flushed) is pending. Deterministic: classes in
   first-seen site order ([Site_map] iterates in site order). *)
let discharge_seq (t : Persist_order.t) ~fresh (st : Persist_order.state) :
    Types.instr list =
  if Persist_order.Site_map.is_empty st then []
  else begin
    let classes = ref [] in (* (g, offsets in reverse first-seen order) *)
    Persist_order.Site_map.iter
      (fun site d ->
        if d = Persist_order.Dirty then
          match Persist_order.sym_at t site with
          | Alias.Exact (g, o) -> (
            match List.assoc_opt g !classes with
            | Some offs ->
              if not (List.mem o !offs) then offs := o :: !offs
            | None -> classes := (g, ref [ o ]) :: !classes)
          | Alias.Within _ | Alias.Any ->
            (* phase A flushed every non-Exact store adjacently; a dirty
               non-Exact site cannot reach a commit *)
            ())
      st;
    let flushes =
      List.concat_map
        (fun (g, offs) ->
          let r = fresh () in
          Types.La (r, g)
          :: List.rev_map (fun o -> Types.Flush (r, o)) !offs)
        (List.rev !classes)
    in
    flushes @ [ Types.Pfence ]
  end

(* Insert [seq] at position [idx] of block [bi]'s instruction list. *)
let splice (instrs : Types.instr list) ~idx ~seq =
  let rec go i = function
    | rest when i = idx -> seq @ rest
    | x :: rest -> x :: go (i + 1) rest
    | [] -> seq (* idx = length: append *)
  in
  go 0 instrs

(* Position of the commit's insertion point: in front of the contiguous
   run of [Ckpt]s and calls attached to a boundary, at the commit itself
   otherwise. Stepping over a call is safe: a commit call clears the
   obligation map, so a boundary trailing one never has obligations; an
   intrinsic call leaves the map untouched, so the state in front of it
   equals the state at the boundary. Never splitting a call from its
   trailing boundary keeps the [Call_boundary] structural rule intact. *)
let insert_index code ~ii =
  let rec back j =
    if
      j > 0
      && (match code.(j - 1) with
         | Types.Ckpt _ | Types.Call _ -> true
         | _ -> false)
    then back (j - 1)
    else j
  in
  back ii

(* Cleanup: delete the no-op flushes/pfences the two phases duplicate
   along converging paths (phase B analyzes the pre-insertion function,
   so a discharge inserted upstream of another is invisible to it), plus
   the address materializations left dead by the deletions. This is the
   minimality guarantee: a surviving flush upgrades a dirty site on some
   path and a surviving pfence drains a flushed one — exactly the
   complement of the verifier's [redundant-flush] lint. One analysis pass
   suffices: a deleted instruction changed no abstract state, so the
   remaining decisions stay valid. *)
let cleanup ~orig_nregs (fn : Prog.func) : Prog.func =
  let t = Persist_order.analyze fn in
  let remove : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun bi _ ->
      if t.reachable.(bi) then
        Persist_order.iter_block t bi ~f:(fun ~ii ins ~before ~covered ->
            match ins with
            | Types.Flush _ when covered = [] ->
              Hashtbl.replace remove (bi, ii) ()
            | Types.Pfence
              when not
                     (Persist_order.Site_map.exists
                        (fun _ d -> d = Persist_order.Flushed)
                        before) ->
              Hashtbl.replace remove (bi, ii) ()
            | _ -> ()))
    fn.blocks;
  let blocks =
    Array.mapi
      (fun bi (blk : Prog.block) ->
        let instrs =
          List.filteri (fun ii _ -> not (Hashtbl.mem remove (bi, ii)))
            blk.instrs
        in
        { blk with instrs })
      fn.blocks
  in
  let used = Hashtbl.create 16 in
  Array.iter
    (fun (blk : Prog.block) ->
      List.iter
        (fun ins ->
          List.iter (fun r -> Hashtbl.replace used r ()) (Types.uses ins))
        blk.instrs)
    blocks;
  let blocks =
    Array.map
      (fun (blk : Prog.block) ->
        let instrs =
          List.filter
            (fun ins ->
              match ins with
              | Types.La (d, _) when d >= orig_nregs && not (Hashtbl.mem used d)
                ->
                false
              | _ -> true)
            blk.instrs
        in
        { blk with instrs })
      blocks
  in
  { fn with blocks }

let run_func (fn : Prog.func) : Prog.func =
  (* ---- phase A ---- *)
  let syms = Hashtbl.create 64 in
  List.iter
    (fun (site, kind, sym) ->
      if kind = Alias.Sk_store then Hashtbl.replace syms site sym)
    (Alias.mem_sites fn);
  let blocks_a =
    Array.mapi
      (fun bi (blk : Prog.block) ->
        let instrs =
          List.concat (List.mapi
            (fun ii ins ->
              match (ins, Hashtbl.find_opt syms (bi, ii)) with
              | Types.Store (base, off, _), Some (Alias.Within _ | Alias.Any)
                ->
                [ ins; Types.Flush (base, off) ]
              | _ -> [ ins ])
            blk.instrs)
        in
        { blk with instrs })
      fn.blocks
  in
  let fn_a = { fn with blocks = blocks_a } in
  (* ---- phase B ---- *)
  let t = Persist_order.analyze fn_a in
  let next_reg = ref fn_a.nregs in
  let fresh () =
    let r = !next_reg in
    incr next_reg;
    r
  in
  (* (block, index, sequence) actions; per-pred requests deduped by the
     predecessor block (its out-state is the same for every successor) *)
  let actions : (int, (int * Types.instr list) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let add_action bi idx seq =
    if seq <> [] then begin
      let cell =
        match Hashtbl.find_opt actions bi with
        | Some c -> c
        | None ->
          let c = ref [] in
          Hashtbl.add actions bi c;
          c
      in
      cell := (idx, seq) :: !cell
    end
  in
  let preds = Cfg.predecessors fn_a in
  let pred_done : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri
    (fun bi (blk : Prog.block) ->
      if t.reachable.(bi) then begin
        let code = Array.of_list blk.instrs in
        Persist_order.iter_block t bi ~f:(fun ~ii ins ~before ~covered:_ ->
            if Persist_order.is_commit_instr ins then begin
              let idx = insert_index code ~ii in
              if idx > 0 || bi = 0 then
                add_action bi idx (discharge_seq t ~fresh before)
              else
                (* commit at the top of a join/loop-header block: push the
                   discharge to each predecessor's own out-state *)
                List.iter
                  (fun p ->
                    if not (Hashtbl.mem pred_done p) then begin
                      Hashtbl.replace pred_done p ();
                      add_action p
                        (List.length fn_a.blocks.(p).instrs)
                        (discharge_seq t ~fresh t.outb.(p))
                    end)
                  preds.(bi)
            end);
        match blk.term with
        | Types.Ret _ ->
          (* the modular contract: all of this function's stores are
             durable when it returns *)
          add_action bi (Array.length code) (discharge_seq t ~fresh t.outb.(bi))
        | Types.Jmp _ | Types.Br _ -> ()
      end)
    fn_a.blocks;
  let blocks_b =
    Array.mapi
      (fun bi (blk : Prog.block) ->
        match Hashtbl.find_opt actions bi with
        | None -> blk
        | Some cell ->
          (* apply at descending indices so earlier positions stay valid *)
          let acts =
            List.sort (fun (i, _) (j, _) -> compare j i) !cell
          in
          let instrs =
            List.fold_left
              (fun instrs (idx, seq) -> splice instrs ~idx ~seq)
              blk.instrs acts
          in
          { blk with instrs })
      fn_a.blocks
  in
  cleanup ~orig_nregs:fn.nregs
    { fn_a with blocks = blocks_b; nregs = !next_reg }

(** Explicit-persistency insertion over every function of a region-formed
    program. *)
let run (p : Prog.t) : Prog.t =
  { p with funcs = List.map (fun (n, fn) -> (n, run_func fn)) p.funcs }
