(** The cWSP compiler driver: region formation, checkpoint insertion,
    checkpoint pruning, and global boundary-id renumbering.

    Different persistence schemes consume different compile configurations:
    the plain baseline runs the uninstrumented binary, iDO-style schemes
    run without checkpoint pruning, and cWSP runs the full pipeline —
    mirroring how the paper builds one binary per scheme from the same
    source (Section IX). *)

open Cwsp_ir
open Cwsp_idem
open Cwsp_ckpt
module Obs = Cwsp_obs.Obs

(* Per-function totals across every compile in the process (obs;
   exported into metrics.json when instrumentation is on). *)
let c_compiles = Obs.Counter.make "compiler.compiles"
let c_funcs = Obs.Counter.make "compiler.functions"
let c_regions = Obs.Counter.make "compiler.regions"
let c_inserted = Obs.Counter.make "compiler.ckpts_inserted"
let c_kept = Obs.Counter.make "compiler.ckpts_kept"

type persist_mode =
  | Implicit (* the cWSP hardware persists committed stores transparently *)
  | Explicit (* compiler-inserted flush/pfence discharge every store *)

type config = {
  optimize : bool; (* -O3-style scalar opts before region formation *)
  region_formation : bool;
  checkpoints : bool;
  pruning : bool;
  persist_mode : persist_mode;
}

let baseline =
  { optimize = true; region_formation = false; checkpoints = false;
    pruning = false; persist_mode = Implicit }

let regions_only =
  { optimize = true; region_formation = true; checkpoints = false;
    pruning = false; persist_mode = Implicit }

let cwsp_no_prune =
  { optimize = true; region_formation = true; checkpoints = true;
    pruning = false; persist_mode = Implicit }

let cwsp =
  { optimize = true; region_formation = true; checkpoints = true;
    pruning = true; persist_mode = Implicit }

let explicit_of c = { c with persist_mode = Explicit }
let cwsp_explicit = explicit_of cwsp

let config_name c =
  let base =
    match (c.region_formation, c.checkpoints, c.pruning) with
    | false, _, _ -> "baseline"
    | true, false, _ -> "regions-only"
    | true, true, false -> "cwsp-no-prune"
    | true, true, true -> "cwsp"
  in
  let base = if c.optimize then base else base ^ "-noopt" in
  match c.persist_mode with Implicit -> base | Explicit -> base ^ "-explicit"

type func_report = {
  fr_name : string;
  static_instrs : int;
  static_regions : int;
  ckpts_inserted : int;
  ckpts_kept : int;
}

type compiled = {
  prog : Prog.t;
  cconfig : config;
  (* recovery slices indexed by *global* boundary id; empty when the
     configuration has no checkpoints *)
  slices : Slice.t array;
  boundary_owner : string array; (* owning function per global boundary id *)
  reports : func_report list;
}

let nboundaries (c : compiled) = Array.length c.slices

(* Optional post-compile hook: the verifier registers itself here so that
   every compile in the process has its output independently checked.
   Kept as an injection point (rather than a direct dependency) because
   the verifier library depends on this one. *)
let post_compile_hook : (compiled -> unit) option ref = ref None
let set_post_compile_hook f = post_compile_hook := Some f
let clear_post_compile_hook () = post_compile_hook := None

let run_post_compile_hook c =
  (match !post_compile_hook with Some f -> f c | None -> ());
  c

(* Renumber boundary ids globally (dense, program-wide) and rekey the
   per-function slice tables accordingly. *)
let renumber (funcs : (string * Prog.func * (int, Slice.t) Hashtbl.t) list) :
    Prog.func list * Slice.t array * string array =
  let next = ref 0 in
  let slices = ref [] and owners = ref [] in
  let funcs' =
    List.map
      (fun (name, (fn : Prog.func), tbl) ->
        let blocks =
          Array.map
            (fun (blk : Prog.block) ->
              let instrs =
                List.map
                  (fun ins ->
                    match ins with
                    | Types.Boundary old_id ->
                      let gid = !next in
                      incr next;
                      let slice =
                        Option.value ~default:[] (Hashtbl.find_opt tbl old_id)
                      in
                      slices := slice :: !slices;
                      owners := name :: !owners;
                      Types.Boundary gid
                    | _ -> ins)
                  blk.instrs
              in
              { blk with instrs })
            fn.blocks
        in
        { fn with blocks })
      funcs
  in
  (funcs', Array.of_list (List.rev !slices), Array.of_list (List.rev !owners))

let compile_prog ~config (p : Prog.t) : compiled =
  Validate.check_exn p;
  let p =
    if config.optimize then begin
      Obs.span_begin ~cat:"compiler" "opt";
      let p = Opt.run p in
      Obs.span_end ();
      p
    end
    else p
  in
  Validate.check_exn p;
  if not config.region_formation then
    run_post_compile_hook
    {
      prog = p;
      cconfig = config;
      slices = [||];
      boundary_owner = [||];
      reports =
        List.map
          (fun (n, f) ->
            {
              fr_name = n;
              static_instrs = Prog.instr_count f;
              static_regions = 0;
              ckpts_inserted = 0;
              ckpts_kept = 0;
            })
          p.funcs;
    }
  else begin
    let reports = ref [] in
    let processed =
      List.map
        (fun (name, fn) ->
          Obs.span_begin ~cat:"compiler" name;
          let fn_regions = Region_form.run_func fn in
          let fn_final, tbl, inserted, kept =
            if config.checkpoints then begin
              let r = Pass.run_func ~prune:config.pruning fn_regions in
              (r.fn, r.slices, r.inserted, r.kept)
            end
            else (fn_regions, Hashtbl.create 0, 0, 0)
          in
          Obs.span_end ();
          reports :=
            {
              fr_name = name;
              static_instrs = Prog.instr_count fn_final;
              static_regions = Region_form.boundary_count fn_final;
              ckpts_inserted = inserted;
              ckpts_kept = kept;
            }
            :: !reports;
          (name, fn_final, tbl))
        p.funcs
    in
    let funcs', slices, owners = renumber processed in
    let prog =
      { p with funcs = List.map (fun (f : Prog.func) -> (f.name, f)) funcs' }
    in
    (* Explicit persistency: discharge durability obligations after the
       ids are final (inserted flushes never add boundaries or ckpts, so
       the global numbering and the slice tables stay valid). *)
    let prog =
      match config.persist_mode with
      | Implicit -> prog
      | Explicit ->
        Obs.span_begin ~cat:"compiler" "persist_insert";
        let prog = Persist_insert.run prog in
        Obs.span_end ();
        prog
    in
    Validate.check_exn prog;
    let reports =
      List.rev_map
        (fun r ->
          match List.assoc_opt r.fr_name prog.funcs with
          | Some fn -> { r with static_instrs = Prog.instr_count fn }
          | None -> r)
        !reports
    in
    run_post_compile_hook
      { prog; cconfig = config; slices; boundary_owner = owners; reports }
  end

let compile ?(config = cwsp) (p : Prog.t) : compiled =
  if not !Obs.on then compile_prog ~config p
  else begin
    Obs.span_begin ~cat:"compiler"
      ~args:[ ("funcs", float_of_int (List.length p.funcs)) ]
      "compile";
    Fun.protect ~finally:Obs.span_end (fun () ->
        let c = compile_prog ~config p in
        Obs.Counter.incr c_compiles;
        Obs.Counter.add c_funcs (List.length c.reports);
        List.iter
          (fun r ->
            Obs.Counter.add c_regions r.static_regions;
            Obs.Counter.add c_inserted r.ckpts_inserted;
            Obs.Counter.add c_kept r.ckpts_kept)
          c.reports;
        c)
  end

let report_to_string (c : compiled) =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "compile config: %s\n" (config_name c.cconfig);
  Printf.bprintf buf "global regions: %d\n" (nboundaries c);
  List.iter
    (fun r ->
      Printf.bprintf buf
        "  %-24s instrs=%-6d regions=%-5d ckpts: %d inserted, %d kept (%.0f%% pruned)\n"
        r.fr_name r.static_instrs r.static_regions r.ckpts_inserted r.ckpts_kept
        (if r.ckpts_inserted = 0 then 0.0
         else
           100.0
           *. float_of_int (r.ckpts_inserted - r.ckpts_kept)
           /. float_of_int r.ckpts_inserted))
    c.reports;
  Buffer.contents buf
