(** The cWSP compiler driver: scalar optimizations, region formation,
    checkpoint insertion, checkpoint pruning, and global boundary-id
    renumbering. Different persistence schemes consume different compile
    configurations (Section IX). *)

open Cwsp_ir
open Cwsp_ckpt

type persist_mode =
  | Implicit
      (** the cWSP hardware persists committed stores transparently *)
  | Explicit
      (** compiler-inserted flush/pfence sequences ([Persist_insert])
          make every store durable before its region commits *)

type config = {
  optimize : bool; (** -O3-style scalar opts before region formation *)
  region_formation : bool;
  checkpoints : bool;
  pruning : bool;
  persist_mode : persist_mode;
}

(** Uninstrumented (but optimized) binary. *)
val baseline : config

(** Boundaries only — the Capri-style compile. *)
val regions_only : config

(** Boundaries + all checkpoints — the iDO-style compile (Fig. 15). *)
val cwsp_no_prune : config

(** The full pipeline. *)
val cwsp : config

(** Same configuration with [persist_mode = Explicit]. *)
val explicit_of : config -> config

(** [explicit_of cwsp]: full pipeline plus flush/pfence insertion. *)
val cwsp_explicit : config

(** Stable name used as a memoization key ([config_name cwsp_explicit] =
    ["cwsp-explicit"]; implicit-mode names are unchanged). *)
val config_name : config -> string

type func_report = {
  fr_name : string;
  static_instrs : int;
  static_regions : int;
  ckpts_inserted : int;
  ckpts_kept : int;
}

type compiled = {
  prog : Prog.t;
  cconfig : config;
  slices : Slice.t array;
    (** recovery slices indexed by {e global} boundary id; empty when the
        configuration has no checkpoints *)
  boundary_owner : string array; (** owning function per global boundary id *)
  reports : func_report list;
}

(** Total region count of the compiled program. *)
val nboundaries : compiled -> int

(** Run the configured pipeline; validates before and after, then applies
    the post-compile hook (if installed) to the result. *)
val compile : ?config:config -> Prog.t -> compiled

(** Install a function applied to every [compile] result — the injection
    point the [Cwsp_verify] library uses to check each compile's output
    without a circular library dependency. The hook may raise to reject
    the compile. *)
val set_post_compile_hook : (compiled -> unit) -> unit

val clear_post_compile_hook : unit -> unit

val report_to_string : compiled -> string
