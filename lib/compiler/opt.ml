(** Classic scalar optimizations run before region formation — the
    paper's toolchain compiles everything at -O3 (Section IX), and the
    quality of the downstream passes depends on it: fewer dead moves
    means smaller live sets (fewer checkpoints), and folded constants
    feed the recovery-slice rematerializer directly.

    The passes are deliberately local (per basic block) for transfer
    functions and global only where the classic formulation is (liveness
    for dead-code elimination); they iterate to a bounded fixpoint. *)

open Cwsp_ir
open Types

(* ---- per-block copy propagation + constant folding ---- *)

(* Lattice value per register within a block. *)
type cell = Unknown | Const of int | Copy of reg

let transfer_operand env op =
  match op with
  | Imm _ -> op
  | Reg r -> (
    match env.(r) with
    | Const v -> Imm v
    | Copy r2 -> Reg r2
    | Unknown -> op)

(* invalidate every Copy that reads [d] *)
let kill env d =
  env.(d) <- Unknown;
  Array.iteri (fun i c -> match c with Copy r when r = d -> env.(i) <- Unknown | _ -> ()) env

let fold_block (nregs : int) (blk : Prog.block) : Prog.block * bool =
  let env = Array.make (max 1 nregs) Unknown in
  let changed = ref false in
  let rewrite ins =
    let ins' =
      match ins with
      | Bin (op, d, a, b) -> (
        let a = transfer_operand env a and b = transfer_operand env b in
        match (a, b) with
        | Imm x, Imm y -> Mov (d, Imm (Eval.binop op x y))
        | _ -> Bin (op, d, a, b))
      | Cmp (op, d, a, b) -> (
        let a = transfer_operand env a and b = transfer_operand env b in
        match (a, b) with
        | Imm x, Imm y -> Mov (d, Imm (Eval.cmpop op x y))
        | _ -> Cmp (op, d, a, b))
      | Mov (d, src) -> Mov (d, transfer_operand env src)
      | Load (d, base, off) -> Load (d, base, off)
      | Store (base, off, src) -> Store (base, off, transfer_operand env src)
      | Call (f, args, ret) -> Call (f, List.map (transfer_operand env) args, ret)
      | Atomic_rmw (op, d, base, off, src) ->
        Atomic_rmw (op, d, base, off, transfer_operand env src)
      | Cas (d, base, off, e, v) ->
        Cas (d, base, off, transfer_operand env e, transfer_operand env v)
      | La _ | Fence | Flush _ | Pfence | Ckpt _ | Boundary _ -> ins
    in
    if ins' <> ins then changed := true;
    (* update the environment with the (rewritten) instruction's effect *)
    (match Types.def ins' with Some d -> kill env d | None -> ());
    (match ins' with
    | Mov (d, Imm v) -> env.(d) <- Const v
    | Mov (d, Reg s) -> if s <> d then env.(d) <- Copy s
    | _ -> ());
    ins'
  in
  let instrs = List.map rewrite blk.instrs in
  (* rewrite branch conditions that became constant *)
  let term, tchanged =
    match blk.term with
    | Br (c, ifso, ifnot) -> (
      match env.(c) with
      | Const v -> ((if v <> 0 then Jmp ifso else Jmp ifnot), true)
      | Copy r2 -> (Br (r2, ifso, ifnot), true)
      | Unknown -> (blk.term, false))
    | Jmp _ | Ret _ -> (blk.term, false)
  in
  ({ instrs; term }, !changed || tchanged)

let fold_func (fn : Prog.func) : Prog.func * bool =
  let changed = ref false in
  let blocks =
    Array.map
      (fun blk ->
        let blk', c = fold_block fn.nregs blk in
        if c then changed := true;
        blk')
      fn.blocks
  in
  ({ fn with blocks }, !changed)

(* ---- dead code elimination ---- *)

(* Instructions safe to delete when their result is dead. Loads are pure
   in this IR (no faults), so dead loads go too. *)
let removable_when_dead = function
  | Bin _ | Cmp _ | Mov _ | La _ | Load _ -> true
  | Store _ | Call _ | Atomic_rmw _ | Cas _ | Fence | Flush _ | Pfence
  | Ckpt _ | Boundary _ ->
    false

let dce_func (fn : Prog.func) : Prog.func * bool =
  let live = Cwsp_analysis.Liveness.compute fn in
  let changed = ref false in
  let blocks =
    Array.mapi
      (fun bi (blk : Prog.block) ->
        (* walk backwards with the running live set *)
        let live_set =
          ref
            (List.fold_left
               (fun s r -> Cwsp_analysis.Liveness.IntSet.add r s)
               live.live_out.(bi)
               (Types.term_uses blk.term))
        in
        let keep =
          List.rev_map
            (fun ins ->
              let dead =
                match Types.def ins with
                | Some d ->
                  (not (Cwsp_analysis.Liveness.IntSet.mem d !live_set))
                  && removable_when_dead ins
                | None -> false
              in
              if dead then begin
                changed := true;
                None
              end
              else begin
                (match Types.def ins with
                | Some d ->
                  live_set := Cwsp_analysis.Liveness.IntSet.remove d !live_set
                | None -> ());
                List.iter
                  (fun r -> live_set := Cwsp_analysis.Liveness.IntSet.add r !live_set)
                  (Types.uses ins);
                Some ins
              end)
            (List.rev blk.instrs)
        in
        { blk with instrs = List.filter_map Fun.id keep })
      fn.blocks
  in
  ({ fn with blocks }, !changed)

(** Run folding + DCE to a bounded fixpoint over one function. *)
let run_func (fn : Prog.func) : Prog.func =
  let rec go fn n =
    if n = 0 then fn
    else begin
      let fn, c1 = fold_func fn in
      let fn, c2 = dce_func fn in
      if c1 || c2 then go fn (n - 1) else fn
    end
  in
  go fn 8

(** Optimize every function of a program. *)
let run (p : Prog.t) : Prog.t = Prog.map_funcs run_func p
