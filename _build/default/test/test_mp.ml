(* Multi-core tests: deterministic SPMD interpretation, spinlock mutual
   exclusion, per-thread checkpoint isolation and the multi-core timing
   engine. *)

open Cwsp_interp
open Cwsp_workloads

let compile_parallel (w : W_parallel.t) ~threads ~config =
  (Cwsp_compiler.Pipeline.compile ~config (w.pbuild ~scale:1 ~threads)).prog

let run_parallel prog ~threads ~worker =
  Multi.traces_of_program prog ~threads ~worker

let read_global (t : Multi.t) name off =
  Memory.read t.mem (Hashtbl.find t.linked.global_addr name + off)

(* ---- functional semantics ---- *)

let test_psweep_striped () =
  let w = W_parallel.psweep in
  let prog = compile_parallel w ~threads:4 ~config:Cwsp_compiler.Pipeline.baseline in
  let t, traces = run_parallel prog ~threads:4 ~worker:w.worker in
  (* every thread wrote its per-thread checksum slot *)
  for tid = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "thread %d produced a checksum" tid)
      true
      (read_global t "checksum" (8 * tid) <> 0)
  done;
  Array.iter
    (fun tr ->
      Alcotest.(check bool) "per-thread trace non-trivial" true
        (Trace.length tr > 1000))
    traces

let test_deterministic_interleaving () =
  let w = W_parallel.ptransactions in
  let prog = compile_parallel w ~threads:3 ~config:Cwsp_compiler.Pipeline.baseline in
  let t1, _ = run_parallel prog ~threads:3 ~worker:w.worker in
  let t2, _ = run_parallel prog ~threads:3 ~worker:w.worker in
  Alcotest.(check bool) "same final memory" true (Memory.equal t1.mem t2.mem)

let test_spinlock_mutual_exclusion () =
  let w = W_parallel.pcounter in
  let threads = 4 in
  let prog = compile_parallel w ~threads ~config:Cwsp_compiler.Pipeline.baseline in
  let t, _ = run_parallel prog ~threads ~worker:w.worker in
  Alcotest.(check int) "no lost updates under the lock" (threads * 400)
    (read_global t "pcnt" 0)

let test_racy_counter_loses_updates () =
  (* the unlocked variant must lose updates, proving the interleaving is
     real and the previous test is meaningful *)
  let w = W_parallel.pcounter_racy in
  let threads = 4 in
  let prog = compile_parallel w ~threads ~config:Cwsp_compiler.Pipeline.baseline in
  let t, _ = run_parallel prog ~threads ~worker:w.worker in
  let v = read_global t "rcnt" 0 in
  Alcotest.(check bool)
    (Printf.sprintf "updates lost (%d < %d)" v (threads * 400))
    true
    (v < threads * 400)

let test_instrumented_parallel_semantics () =
  (* cWSP instrumentation must not change multi-threaded results either *)
  let w = W_parallel.pcounter in
  let threads = 3 in
  let base = compile_parallel w ~threads ~config:Cwsp_compiler.Pipeline.baseline in
  let cwsp = compile_parallel w ~threads ~config:Cwsp_compiler.Pipeline.cwsp in
  let tb, _ = run_parallel base ~threads ~worker:w.worker in
  let tc, _ = run_parallel cwsp ~threads ~worker:w.worker in
  Alcotest.(check int) "same counter value"
    (read_global tb "pcnt" 0)
    (read_global tc "pcnt" 0)

let test_per_thread_ckpt_slots_disjoint () =
  let a = Layout.ckpt_slot ~tid:0 ~depth:0 5 in
  let b = Layout.ckpt_slot ~tid:1 ~depth:0 5 in
  let c = Layout.ckpt_slot ~tid:0 ~depth:1 5 in
  Alcotest.(check bool) "threads disjoint" true (a <> b);
  Alcotest.(check bool) "depths disjoint" true (a <> c);
  Alcotest.(check bool) "all in ckpt area" true
    (Layout.is_ckpt_addr a && Layout.is_ckpt_addr b && Layout.is_ckpt_addr c)

let test_worker_arity_checked () =
  let w = W_parallel.psweep in
  let prog = compile_parallel w ~threads:2 ~config:Cwsp_compiler.Pipeline.baseline in
  let linked = Machine.link prog in
  Alcotest.check_raises "bad worker rejected"
    (Invalid_argument "Multi.create: no worker function nope") (fun () ->
      ignore (Multi.create linked ~threads:2 ~worker:"nope"))

(* ---- multi-core recovery (Section VIII) ---- *)

(* The three SPMD workloads below are schedule-deterministic in their
   final program-visible state (striped/disjoint, or commutative updates
   under a lock), so a failure-free run is a valid oracle even though
   recovery changes the interleaving. *)
let mp_validate name ~threads ~points =
  let w = W_parallel.find_exn name in
  let compiled =
    Cwsp_compiler.Pipeline.compile ~config:Cwsp_compiler.Pipeline.cwsp
      (w.pbuild ~scale:1 ~threads)
  in
  (* exact total dynamic steps, to spread the crash points *)
  let _, traces =
    Multi.traces_of_program compiled.prog ~threads ~worker:w.worker
  in
  let total =
    Array.fold_left (fun acc tr -> acc + Trace.length tr) 0 traces
  in
  let failures = ref [] in
  for i = 0 to points - 1 do
    let crash_at = 1 + (i * (total * 9 / 10) / points) in
    match
      Cwsp_recovery.Harness_mp.validate ~seed:(500 + i) ~crash_at compiled
        ~threads ~worker:w.worker
    with
    | Ok () -> ()
    | Error e -> failures := Printf.sprintf "@%d: %s" crash_at e :: !failures
  done;
  !failures

let test_mp_recovery_psweep () =
  Alcotest.(check (list string)) "psweep x4 threads" []
    (mp_validate "psweep" ~threads:4 ~points:10)

let test_mp_recovery_pcounter () =
  Alcotest.(check (list string)) "pcounter x4 threads (locked)" []
    (mp_validate "pcounter" ~threads:4 ~points:10)

let test_mp_recovery_ptx () =
  Alcotest.(check (list string)) "ptx x3 threads (locked transfers)" []
    (mp_validate "ptx" ~threads:3 ~points:10)

(* ---- timing ---- *)

let mp_elapsed w ~threads ~scheme ~config =
  let prog = compile_parallel w ~threads ~config in
  let _, traces = run_parallel prog ~threads ~worker:w.W_parallel.worker in
  (Cwsp_sim.Engine_mp.run_traces Cwsp_sim.Config.default scheme traces).elapsed_ns

let test_mp_cwsp_slower_than_baseline () =
  let w = W_parallel.psweep in
  let b =
    mp_elapsed w ~threads:4 ~scheme:`Baseline ~config:Cwsp_compiler.Pipeline.baseline
  in
  let c = mp_elapsed w ~threads:4 ~scheme:`Cwsp ~config:Cwsp_compiler.Pipeline.cwsp in
  Alcotest.(check bool) "cwsp >= baseline" true (c >= b)

let test_mp_contention_grows () =
  let w = W_parallel.psweep in
  let ratio threads =
    mp_elapsed w ~threads ~scheme:`Cwsp ~config:Cwsp_compiler.Pipeline.cwsp
    /. mp_elapsed w ~threads ~scheme:`Baseline ~config:Cwsp_compiler.Pipeline.baseline
  in
  Alcotest.(check bool) "8 cores contend more than 1" true (ratio 8 > ratio 1)

let test_mp_per_core_stats () =
  let w = W_parallel.psweep in
  let threads = 2 in
  let prog = compile_parallel w ~threads ~config:Cwsp_compiler.Pipeline.cwsp in
  let _, traces = run_parallel prog ~threads ~worker:w.worker in
  let r = Cwsp_sim.Engine_mp.run_traces Cwsp_sim.Config.default `Cwsp traces in
  Alcotest.(check int) "one stats record per core" threads (Array.length r.per_core);
  Array.iter
    (fun (s : Cwsp_sim.Stats.t) ->
      Alcotest.(check bool) "each core persisted stores" true (s.nvm_writes > 0))
    r.per_core

let () =
  Alcotest.run "mp"
    [
      ( "functional",
        [
          Alcotest.test_case "striped sweep" `Quick test_psweep_striped;
          Alcotest.test_case "deterministic" `Quick test_deterministic_interleaving;
          Alcotest.test_case "spinlock excludes" `Quick test_spinlock_mutual_exclusion;
          Alcotest.test_case "races lose updates" `Quick test_racy_counter_loses_updates;
          Alcotest.test_case "instrumentation neutral" `Quick test_instrumented_parallel_semantics;
          Alcotest.test_case "ckpt slots disjoint" `Quick test_per_thread_ckpt_slots_disjoint;
          Alcotest.test_case "worker checked" `Quick test_worker_arity_checked;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "psweep" `Slow test_mp_recovery_psweep;
          Alcotest.test_case "pcounter" `Slow test_mp_recovery_pcounter;
          Alcotest.test_case "ptx" `Slow test_mp_recovery_ptx;
        ] );
      ( "timing",
        [
          Alcotest.test_case "cwsp slower" `Slow test_mp_cwsp_slower_than_baseline;
          Alcotest.test_case "contention grows" `Slow test_mp_contention_grows;
          Alcotest.test_case "per-core stats" `Slow test_mp_per_core_stats;
        ] );
    ]
