(* Tests for the IR runtime: allocator, memory ops, LCG, syscall path. *)

open Cwsp_ir
open Cwsp_interp

let run_with_runtime body =
  let b = Builder.program () in
  Cwsp_runtime.Libc.add b;
  Cwsp_runtime.Kernel.add b;
  Builder.global b "scratch" ~size:1024 ();
  Builder.func b "main" ~nparams:0 (fun fb ->
      body fb;
      Builder.ret fb None);
  Builder.set_main b "main";
  let p = Builder.finish b in
  Validate.check_exn p;
  Machine.run_functional p

let test_sbrk_monotonic () =
  let m =
    run_with_runtime (fun fb ->
        let open Builder in
        let a = call fb "sbrk" [ Imm 32 ] in
        let b' = call fb "sbrk" [ Imm 32 ] in
        call_void fb "__out" [ Reg (sub fb (Reg b') (Reg a)) ])
  in
  Alcotest.(check (list int)) "32 bytes apart" [ 32 ] (Machine.outputs m)

let test_malloc_distinct_blocks () =
  let m =
    run_with_runtime (fun fb ->
        let open Builder in
        let a = call fb "malloc" [ Imm 64 ] in
        let b' = call fb "malloc" [ Imm 64 ] in
        let diff = sub fb (Reg b') (Reg a) in
        let ok = cmp fb Types.Ge (Reg diff) (Imm 64) in
        call_void fb "__out" [ Reg ok ];
        (* blocks are usable *)
        store fb a 0 (Imm 11);
        store fb b' 0 (Imm 22);
        let va = load fb a 0 in
        let vb = load fb b' 0 in
        call_void fb "__out" [ Reg va ];
        call_void fb "__out" [ Reg vb ])
  in
  Alcotest.(check (list int)) "separated and usable" [ 1; 11; 22 ]
    (Machine.outputs m)

let test_free_then_reuse () =
  let m =
    run_with_runtime (fun fb ->
        let open Builder in
        let a = call fb "malloc" [ Imm 48 ] in
        call_void fb "free" [ Reg a ];
        let b' = call fb "malloc" [ Imm 48 ] in
        (* first-fit must hand the same block back *)
        let same = cmp fb Types.Eq (Reg a) (Reg b') in
        call_void fb "__out" [ Reg same ])
  in
  Alcotest.(check (list int)) "block reused" [ 1 ] (Machine.outputs m)

let test_malloc_split () =
  let m =
    run_with_runtime (fun fb ->
        let open Builder in
        let big = call fb "malloc" [ Imm 256 ] in
        call_void fb "free" [ Reg big ];
        (* two small allocations carved from the freed block *)
        let s1 = call fb "malloc" [ Imm 32 ] in
        let s2 = call fb "malloc" [ Imm 32 ] in
        let distinct = cmp fb Types.Ne (Reg s1) (Reg s2) in
        call_void fb "__out" [ Reg distinct ];
        store fb s1 0 (Imm 1);
        store fb s2 0 (Imm 2);
        let v1 = load fb s1 0 in
        let v2 = load fb s2 0 in
        call_void fb "__out" [ Reg (add fb (Reg v1) (Reg v2)) ])
  in
  Alcotest.(check (list int)) "split works" [ 1; 3 ] (Machine.outputs m)

let test_memcpy_memset () =
  let m =
    run_with_runtime (fun fb ->
        let open Builder in
        let s = la fb "scratch" in
        let dst = add fb (Reg s) (Imm 512) in
        let _ = call fb "memset" [ Reg s; Imm 7; Imm 64 ] in
        let _ = call fb "memcpy" [ Reg dst; Reg s; Imm 64 ] in
        let v = load fb dst 56 in
        call_void fb "__out" [ Reg v ];
        let untouched = load fb dst 64 in
        call_void fb "__out" [ Reg untouched ])
  in
  Alcotest.(check (list int)) "copied then stops" [ 7; 0 ] (Machine.outputs m)

let test_lcg_deterministic_and_positive () =
  let run () =
    run_with_runtime (fun fb ->
        let open Builder in
        for _ = 1 to 3 do
          let r = call fb "lcg_next" [] in
          call_void fb "__out" [ Reg r ]
        done)
  in
  let a = Machine.outputs (run ()) in
  let b = Machine.outputs (run ()) in
  Alcotest.(check (list int)) "deterministic" a b;
  Alcotest.(check bool) "positive" true (List.for_all (fun x -> x >= 0) a);
  Alcotest.(check bool) "distinct" true
    (List.sort_uniq compare a |> List.length = 3)

let test_syscall_write_read_roundtrip () =
  let m =
    run_with_runtime (fun fb ->
        let open Builder in
        let s = la fb "scratch" in
        store fb s 0 (Imm 111);
        store fb s 8 (Imm 222);
        let w =
          call fb "entry_syscall_64"
            [ Imm Cwsp_runtime.Kernel.sys_write_no; Reg s; Imm 2 ]
        in
        call_void fb "__out" [ Reg w ];
        let dst = add fb (Reg s) (Imm 512) in
        let r =
          call fb "entry_syscall_64"
            [ Imm Cwsp_runtime.Kernel.sys_read_no; Reg dst; Imm 2 ]
        in
        call_void fb "__out" [ Reg r ];
        let v0 = load fb dst 0 in
        let v1 = load fb dst 8 in
        call_void fb "__out" [ Reg v0 ];
        call_void fb "__out" [ Reg v1 ])
  in
  Alcotest.(check (list int)) "write/read roundtrip" [ 2; 2; 111; 222 ]
    (Machine.outputs m)

let test_getpid () =
  let m =
    run_with_runtime (fun fb ->
        let open Builder in
        let s = la fb "scratch" in
        let r =
          call fb "entry_syscall_64"
            [ Imm Cwsp_runtime.Kernel.sys_getpid_no; Reg s; Imm 0 ]
        in
        call_void fb "__out" [ Reg r ])
  in
  Alcotest.(check (list int)) "pid" [ 4242 ] (Machine.outputs m)

(* the lifted assembly stub (Section IV-D's Remill alternative) behaves
   exactly like the hand-annotated one *)
let test_lifted_entry_equivalent () =
  let m =
    run_with_runtime (fun fb ->
        let open Builder in
        let s = la fb "scratch" in
        store fb s 0 (Imm 7);
        store fb s 8 (Imm 9);
        let a =
          call fb "entry_syscall_64"
            [ Imm Cwsp_runtime.Kernel.sys_write_no; Reg s; Imm 2 ]
        in
        let b' =
          call fb "entry_syscall_64_lifted"
            [ Imm Cwsp_runtime.Kernel.sys_write_no; Reg s; Imm 2 ]
        in
        call_void fb "__out" [ Reg a ];
        call_void fb "__out" [ Reg b' ];
        let p1 =
          call fb "entry_syscall_64_lifted"
            [ Imm Cwsp_runtime.Kernel.sys_getpid_no; Reg s; Imm 0 ]
        in
        call_void fb "__out" [ Reg p1 ])
  in
  Alcotest.(check (list int)) "same results" [ 2; 2; 4242 ] (Machine.outputs m)

(* the lifted stub needs NO manual boundaries: the pipeline forms its
   regions automatically, and power failures inside it recover *)
let test_lifted_entry_regions_and_recovery () =
  let b = Builder.program () in
  Cwsp_runtime.Libc.add b;
  Cwsp_runtime.Kernel.add b;
  Builder.global b "scratch2" ~size:64 ();
  Builder.func b "main" ~nparams:0 (fun fb ->
      let open Builder in
      let s = la fb "scratch2" in
      let _ =
        loop fb ~from:(Imm 0) ~below:(Imm 8) (fun i ->
            store fb s 0 (Reg i);
            let _ =
              call fb "entry_syscall_64_lifted"
                [ Imm Cwsp_runtime.Kernel.sys_write_no; Reg s; Imm 1 ]
            in
            ())
      in
      ret fb None);
  Builder.set_main b "main";
  let compiled =
    Cwsp_compiler.Pipeline.compile ~config:Cwsp_compiler.Pipeline.cwsp
      (Builder.finish b)
  in
  let fn = Prog.func_exn compiled.prog "entry_syscall_64_lifted" in
  Alcotest.(check bool) "regions formed automatically" true
    (Cwsp_idem.Region_form.boundary_count fn >= 2);
  Alcotest.(check (list string)) "no antidependences" []
    (List.map Cwsp_idem.Antidep.pair_to_string (Cwsp_idem.Antidep.violations fn));
  let _, tr = Machine.trace_of_program compiled.prog in
  let total = Cwsp_interp.Trace.length tr in
  for i = 0 to 29 do
    let crash_at = 1 + (i * (total - 2) / 30) in
    match Cwsp_recovery.Harness.validate ~seed:i ~crash_at compiled with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "lifted path crash@%d: %s" crash_at e
  done

(* the manually annotated entry function keeps its boundaries through the
   full compile pipeline *)
let test_entry_manual_boundaries_survive () =
  let b = Builder.program () in
  Cwsp_runtime.Libc.add b;
  Cwsp_runtime.Kernel.add b;
  Builder.func b "main" ~nparams:0 (fun fb -> Builder.ret fb None);
  Builder.set_main b "main";
  let compiled =
    Cwsp_compiler.Pipeline.compile ~config:Cwsp_compiler.Pipeline.cwsp
      (Builder.finish b)
  in
  let fn = Prog.func_exn compiled.prog "entry_syscall_64" in
  Alcotest.(check bool) "at least 3 boundaries" true
    (Cwsp_idem.Region_form.boundary_count fn >= 3)

let () =
  Alcotest.run "runtime"
    [
      ( "libc",
        [
          Alcotest.test_case "sbrk" `Quick test_sbrk_monotonic;
          Alcotest.test_case "malloc distinct" `Quick test_malloc_distinct_blocks;
          Alcotest.test_case "free/reuse" `Quick test_free_then_reuse;
          Alcotest.test_case "split" `Quick test_malloc_split;
          Alcotest.test_case "memcpy/memset" `Quick test_memcpy_memset;
          Alcotest.test_case "lcg" `Quick test_lcg_deterministic_and_positive;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "write/read" `Quick test_syscall_write_read_roundtrip;
          Alcotest.test_case "getpid" `Quick test_getpid;
          Alcotest.test_case "manual boundaries" `Quick test_entry_manual_boundaries_survive;
          Alcotest.test_case "lifted asm equivalent" `Quick test_lifted_entry_equivalent;
          Alcotest.test_case "lifted asm regions+recovery" `Slow
            test_lifted_entry_regions_and_recovery;
        ] );
    ]
