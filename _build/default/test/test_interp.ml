(* Tests for the interpreter: sparse memory, machine semantics, traces. *)

open Cwsp_ir
open Cwsp_interp

let qtest = QCheck_alcotest.to_alcotest

(* ---- memory ---- *)

let test_memory_zero_default () =
  let m = Memory.create () in
  Alcotest.(check int) "untouched reads zero" 0 (Memory.read m 0x1000)

let test_memory_alignment () =
  let m = Memory.create () in
  Alcotest.check_raises "unaligned"
    (Invalid_argument "Memory: unaligned address 0x1001") (fun () ->
      ignore (Memory.read m 0x1001))

let prop_memory_roundtrip =
  QCheck.Test.make ~name:"write-read roundtrip" ~count:300
    QCheck.(pair (int_range 0 100_000) int)
    (fun (word_idx, v) ->
      let m = Memory.create () in
      let addr = word_idx * 8 in
      Memory.write m addr v;
      Memory.read m addr = v)

let prop_memory_writes_isolated =
  QCheck.Test.make ~name:"distinct addresses isolated" ~count:300
    QCheck.(triple (int_range 0 10_000) (int_range 0 10_000) int)
    (fun (a, b, v) ->
      QCheck.assume (a <> b);
      let m = Memory.create () in
      Memory.write m (a * 8) v;
      Memory.read m (b * 8) = 0)

let test_memory_snapshot_isolation () =
  let m = Memory.create () in
  Memory.write m 64 7;
  let s = Memory.snapshot m in
  Memory.write m 64 9;
  Alcotest.(check int) "snapshot unaffected" 7 (Memory.read s 64);
  Alcotest.(check int) "original updated" 9 (Memory.read m 64)

let test_memory_equal_and_diff () =
  let a = Memory.create () and b = Memory.create () in
  Memory.write a 128 5;
  Memory.write b 128 5;
  Alcotest.(check bool) "equal" true (Memory.equal a b);
  (* a zero-valued write materializes a page but stays equal *)
  Memory.write a 8192 0;
  Alcotest.(check bool) "zero page still equal" true (Memory.equal a b);
  Memory.write b 256 1;
  Alcotest.(check bool) "not equal" false (Memory.equal a b);
  match Memory.first_diff a b with
  | Some (addr, av, bv) ->
    Alcotest.(check int) "diff addr" 256 addr;
    Alcotest.(check (pair int int)) "values" (0, 1) (av, bv)
  | None -> Alcotest.fail "expected diff"

(* ---- event encoding ---- *)

let prop_event_roundtrip =
  QCheck.Test.make ~name:"event encode/decode" ~count:500
    QCheck.(pair (int_range 0 6) (int_range 0 (1 lsl 40)))
    (fun (tag, payload) ->
      let kind = Event.kind_of_tag tag in
      let ev = Event.encode kind ~payload in
      Event.kind ev = kind && Event.payload ev = payload)

(* ---- machine programs ---- *)

let build_main ?(globals = []) body =
  let b = Builder.program () in
  List.iter (fun (n, size) -> Builder.global b n ~size ()) globals;
  Builder.func b "main" ~nparams:0 (fun fb ->
      body b fb;
      Builder.ret fb None);
  Builder.set_main b "main";
  Builder.finish b

let test_factorial_recursion () =
  let b = Builder.program () in
  Builder.func b "fact" ~nparams:1 (fun fb ->
      let open Builder in
      let n = param fb 0 in
      let is_zero = cmp fb Eq (Reg n) (Imm 0) in
      let then_l = block fb in
      let else_l = block fb in
      br fb is_zero ~ifso:then_l ~ifnot:else_l;
      switch_to fb then_l;
      ret fb (Some (Imm 1));
      switch_to fb else_l;
      let n1 = sub fb (Reg n) (Imm 1) in
      let r = call fb "fact" [ Reg n1 ] in
      let v = mul fb (Reg n) (Reg r) in
      ret fb (Some (Reg v)));
  Builder.func b "main" ~nparams:0 (fun fb ->
      let open Builder in
      let r = call fb "fact" [ Imm 10 ] in
      call_void fb "__out" [ Reg r ];
      ret fb None);
  Builder.set_main b "main";
  let p = Builder.finish b in
  Validate.check_exn p;
  let m = Machine.run_functional p in
  Alcotest.(check (list int)) "10!" [ 3628800 ] (Machine.outputs m)

let test_atomic_semantics () =
  let p =
    build_main ~globals:[ ("cell", 8) ] (fun _b fb ->
        let open Builder in
        let c = la fb "cell" in
        store fb c 0 (Imm 10);
        let old = atomic_rmw fb Types.Add c 0 (Imm 5) in
        call_void fb "__out" [ Reg old ];
        let now = load fb c 0 in
        call_void fb "__out" [ Reg now ];
        let casr = cas fb c 0 ~expected:(Imm 15) ~desired:(Imm 99) in
        call_void fb "__out" [ Reg casr ];
        let final = load fb c 0 in
        call_void fb "__out" [ Reg final ];
        let failed_cas = cas fb c 0 ~expected:(Imm 0) ~desired:(Imm 1) in
        call_void fb "__out" [ Reg failed_cas ];
        let unchanged = load fb c 0 in
        call_void fb "__out" [ Reg unchanged ])
  in
  let m = Machine.run_functional p in
  Alcotest.(check (list int)) "atomic outputs" [ 10; 15; 15; 99; 99; 99 ]
    (Machine.outputs m)

let test_fuel_exhaustion () =
  let b = Builder.program () in
  Builder.func b "main" ~nparams:0 (fun fb ->
      let l = Builder.block fb in
      Builder.jmp fb l;
      Builder.switch_to fb l;
      Builder.jmp fb l);
  Builder.set_main b "main";
  let p = Builder.finish b in
  let m = Machine.create (Machine.link p) in
  Alcotest.check_raises "infinite loop hits fuel" Machine.Fuel_exhausted
    (fun () -> Machine.run ~fuel:1000 m Machine.no_hooks)

let test_deep_recursion_trap () =
  let b = Builder.program () in
  Builder.func b "inf" ~nparams:0 (fun fb ->
      let open Builder in
      let r = call fb "inf" [] in
      ret fb (Some (Reg r)));
  Builder.func b "main" ~nparams:0 (fun fb ->
      let open Builder in
      let _ = call fb "inf" [] in
      ret fb None);
  Builder.set_main b "main";
  let p = Builder.finish b in
  let m = Machine.create (Machine.link p) in
  let trapped =
    try
      Machine.run ~fuel:100000 m Machine.no_hooks;
      false
    with Machine.Trap _ -> true
  in
  Alcotest.(check bool) "deep recursion traps" true trapped

let test_trace_summary () =
  let p =
    build_main ~globals:[ ("arr", 128) ] (fun _b fb ->
        let open Builder in
        let a = la fb "arr" in
        store fb a 0 (Imm 1);
        store fb a 8 (Imm 2);
        let _ = load fb a 0 in
        fence fb)
  in
  let _, tr = Machine.trace_of_program p in
  let s = Trace.summarize tr in
  Alcotest.(check int) "stores" 2 s.stores;
  Alcotest.(check int) "loads" 1 s.loads;
  Alcotest.(check int) "fences" 1 s.fences;
  Alcotest.(check int) "no boundaries before compilation" 0 s.boundaries

let test_region_lengths () =
  let tr = Trace.create () in
  List.iter (Trace.push tr)
    [
      Event.encode Alu ~payload:0;
      Event.encode Boundary ~payload:0;
      Event.encode Alu ~payload:0;
      Event.encode Alu ~payload:0;
      Event.encode Boundary ~payload:1;
      Event.encode Alu ~payload:0;
      Event.encode Boundary ~payload:2;
    ];
  Alcotest.(check (list int)) "lengths between boundaries" [ 3; 2 ]
    (Trace.region_lengths tr)

let test_store_hook_old_values () =
  let p =
    build_main ~globals:[ ("x", 8) ] (fun _b fb ->
        let open Builder in
        let x = la fb "x" in
        store fb x 0 (Imm 5);
        store fb x 0 (Imm 9))
  in
  let m = Machine.create (Machine.link p) in
  let olds = ref [] in
  let hooks =
    {
      Machine.on_event = ignore;
      on_store = (fun ~addr:_ ~old ~value:_ -> olds := old :: !olds);
    }
  in
  Machine.run m hooks;
  Alcotest.(check (list int)) "old values observed" [ 5; 0 ] !olds

let () =
  Alcotest.run "interp"
    [
      ( "memory",
        [
          Alcotest.test_case "zero default" `Quick test_memory_zero_default;
          Alcotest.test_case "alignment" `Quick test_memory_alignment;
          Alcotest.test_case "snapshot isolation" `Quick test_memory_snapshot_isolation;
          Alcotest.test_case "equal/diff" `Quick test_memory_equal_and_diff;
          qtest prop_memory_roundtrip;
          qtest prop_memory_writes_isolated;
        ] );
      ("event", [ qtest prop_event_roundtrip ]);
      ( "machine",
        [
          Alcotest.test_case "factorial recursion" `Quick test_factorial_recursion;
          Alcotest.test_case "atomics" `Quick test_atomic_semantics;
          Alcotest.test_case "fuel" `Quick test_fuel_exhaustion;
          Alcotest.test_case "deep recursion traps" `Quick test_deep_recursion_trap;
          Alcotest.test_case "store hook old values" `Quick test_store_hook_old_values;
        ] );
      ( "trace",
        [
          Alcotest.test_case "summary" `Quick test_trace_summary;
          Alcotest.test_case "region lengths" `Quick test_region_lengths;
        ] );
    ]
