(* Tests for idempotent region formation: hitting set, antidependence
   detection, boundary placement, and the no-violations postcondition. *)

open Cwsp_ir
open Cwsp_idem

let qtest = QCheck_alcotest.to_alcotest

(* ---- hitting set ---- *)

let stabbed (c : int list) (itv : Hitting.interval) =
  List.exists (fun x -> itv.lo < x && x <= itv.hi) c

let prop_stab_covers_all =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 15)
        (pair (int_range 0 30) (int_range 1 10) >|= fun (lo, len) ->
         { Hitting.lo; hi = lo + len }))
  in
  QCheck.Test.make ~name:"stab covers every interval" ~count:300
    (QCheck.make gen) (fun intervals ->
      let cuts = Hitting.stab intervals in
      List.for_all (stabbed cuts) intervals)

let test_stab_optimal_on_overlap () =
  (* three intervals sharing one point need exactly one cut *)
  let intervals =
    [ { Hitting.lo = 0; hi = 5 }; { Hitting.lo = 2; hi = 6 }; { Hitting.lo = 4; hi = 9 } ]
  in
  Alcotest.(check int) "single cut" 1 (List.length (Hitting.stab intervals))

let test_stab_disjoint_needs_each () =
  let intervals =
    [ { Hitting.lo = 0; hi = 1 }; { Hitting.lo = 5; hi = 6 }; { Hitting.lo = 10; hi = 11 } ]
  in
  Alcotest.(check int) "three cuts" 3 (List.length (Hitting.stab intervals))

(* ---- region formation on constructed functions ---- *)

let compile_main ?(globals = [ ("g", 256) ]) body =
  let b = Builder.program () in
  List.iter (fun (n, s) -> Builder.global b n ~size:s ()) globals;
  Builder.func b "main" ~nparams:0 (fun fb ->
      body fb;
      Builder.ret fb None);
  Builder.set_main b "main";
  let p = Builder.finish b in
  Validate.check_exn p;
  Region_form.run p

let count_boundaries fn = Region_form.boundary_count fn

let test_entry_boundary () =
  let p = compile_main (fun _ -> ()) in
  let fn = Prog.func_exn p "main" in
  (match fn.blocks.(0).instrs with
  | Types.Boundary _ :: _ -> ()
  | _ -> Alcotest.fail "entry boundary missing");
  Alcotest.(check int) "exactly one" 1 (count_boundaries fn)

let test_antidep_cut_in_block () =
  (* load g[0]; store g[0] -> must be separated by a boundary *)
  let p =
    compile_main (fun fb ->
        let open Builder in
        let g = la fb "g" in
        let v = load fb g 0 in
        store fb g 0 (Reg (add fb (Reg v) (Imm 1))))
  in
  let fn = Prog.func_exn p "main" in
  Alcotest.(check (list string)) "no violations" []
    (List.map Antidep.pair_to_string (Antidep.violations fn));
  Alcotest.(check bool) "extra boundary inserted" true (count_boundaries fn >= 2)

let test_no_cut_without_alias () =
  (* load g[0]; store g[8]: provably disjoint, single region suffices *)
  let p =
    compile_main (fun fb ->
        let open Builder in
        let g = la fb "g" in
        let v = load fb g 0 in
        store fb g 8 (Reg v))
  in
  let fn = Prog.func_exn p "main" in
  Alcotest.(check int) "only the entry boundary" 1 (count_boundaries fn)

let test_loop_header_boundary () =
  let p =
    compile_main (fun fb ->
        let open Builder in
        let g = la fb "g" in
        let _ =
          loop fb ~from:(Imm 0) ~below:(Imm 4) (fun i ->
              let off = mul fb (Reg i) (Imm 8) in
              let a = add fb (Reg g) (Reg off) in
              store fb a 0 (Reg i))
        in
        ())
  in
  let fn = Prog.func_exn p "main" in
  (* entry boundary + loop header boundary at least *)
  Alcotest.(check bool) "boundaries >= 2" true (count_boundaries fn >= 2);
  Alcotest.(check (list string)) "clean" []
    (List.map Antidep.pair_to_string (Antidep.violations fn))

let test_sync_isolated () =
  let p =
    compile_main (fun fb ->
        let open Builder in
        let g = la fb "g" in
        let v = load fb g 0 in
        let _ = atomic_rmw fb Types.Add g 0 (Reg v) in
        store fb g 0 (Imm 1))
  in
  let fn = Prog.func_exn p "main" in
  (* the atomic gets boundaries on both sides *)
  let instrs = fn.blocks.(0).instrs in
  let rec check = function
    | Types.Boundary _ :: Types.Atomic_rmw _ :: Types.Boundary _ :: _ -> true
    | _ :: rest -> check rest
    | [] -> false
  in
  Alcotest.(check bool) "atomic fenced by boundaries" true (check instrs);
  Alcotest.(check (list string)) "clean" []
    (List.map Antidep.pair_to_string (Antidep.violations fn))

let test_call_boundary_after () =
  let b = Builder.program () in
  Builder.global b "g" ~size:64 ();
  Builder.func b "callee" ~nparams:0 (fun fb -> Builder.ret fb None);
  Builder.func b "main" ~nparams:0 (fun fb ->
      let open Builder in
      call_void fb "callee" [];
      ret fb None);
  Builder.set_main b "main";
  let p = Region_form.run (Builder.finish b) in
  let fn = Prog.func_exn p "main" in
  let instrs = fn.blocks.(0).instrs in
  let rec check = function
    | Types.Call _ :: Types.Boundary _ :: _ -> true
    | _ :: rest -> check rest
    | [] -> false
  in
  Alcotest.(check bool) "boundary after call" true (check instrs)

let test_no_adjacent_boundaries () =
  let p =
    compile_main (fun fb ->
        let open Builder in
        let g = la fb "g" in
        fence fb;
        fence fb;
        store fb g 0 (Imm 1))
  in
  let fn = Prog.func_exn p "main" in
  Prog.iter_instrs
    (fun bi ii ins ->
      match ins with
      | Types.Boundary _ -> (
        let blk = fn.blocks.(bi) in
        match List.nth_opt blk.instrs (ii + 1) with
        | Some (Types.Boundary _) -> Alcotest.fail "adjacent boundaries"
        | _ -> ())
      | _ -> ())
    fn

(* the checker finds a violation when boundaries are removed *)
let test_checker_detects_removed_boundary () =
  let p =
    compile_main (fun fb ->
        let open Builder in
        let g = la fb "g" in
        let v = load fb g 0 in
        store fb g 0 (Reg v))
  in
  let fn = Prog.func_exn p "main" in
  let stripped =
    {
      fn with
      Prog.blocks =
        Array.map
          (fun (blk : Prog.block) ->
            {
              blk with
              instrs =
                List.filter
                  (fun i -> match i with Types.Boundary _ -> false | _ -> true)
                  blk.instrs;
            })
          fn.blocks;
    }
  in
  Alcotest.(check bool) "violations reappear" true
    (Antidep.violations stripped <> [])

(* all runtime functions form cleanly *)
let test_runtime_regions_clean () =
  let b = Builder.program () in
  Cwsp_runtime.Libc.add b;
  Cwsp_runtime.Kernel.add b;
  Builder.func b "main" ~nparams:0 (fun fb -> Builder.ret fb None);
  Builder.set_main b "main";
  let p = Region_form.run (Builder.finish b) in
  List.iter
    (fun (name, fn) ->
      Alcotest.(check (list string)) (name ^ " clean") []
        (List.map Antidep.pair_to_string (Antidep.violations fn)))
    p.funcs

let () =
  Alcotest.run "idem"
    [
      ( "hitting",
        [
          qtest prop_stab_covers_all;
          Alcotest.test_case "optimal on overlap" `Quick test_stab_optimal_on_overlap;
          Alcotest.test_case "disjoint" `Quick test_stab_disjoint_needs_each;
        ] );
      ( "region-form",
        [
          Alcotest.test_case "entry boundary" `Quick test_entry_boundary;
          Alcotest.test_case "antidep cut" `Quick test_antidep_cut_in_block;
          Alcotest.test_case "no spurious cut" `Quick test_no_cut_without_alias;
          Alcotest.test_case "loop header" `Quick test_loop_header_boundary;
          Alcotest.test_case "sync isolated" `Quick test_sync_isolated;
          Alcotest.test_case "call boundary" `Quick test_call_boundary_after;
          Alcotest.test_case "no adjacent boundaries" `Quick test_no_adjacent_boundaries;
          Alcotest.test_case "checker detects stripping" `Quick test_checker_detects_removed_boundary;
          Alcotest.test_case "runtime library clean" `Quick test_runtime_regions_clean;
        ] );
    ]
