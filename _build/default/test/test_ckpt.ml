(* Tests for checkpoint insertion, Penny pruning and recovery slices,
   including an analogue of the paper's Fig. 4(b) example. *)

open Cwsp_ir
open Cwsp_idem
open Cwsp_ckpt

let compile_func ?(prune = true) build =
  let b = Builder.program () in
  Builder.global b "g" ~size:256 ();
  Builder.func b "main" ~nparams:0 (fun fb ->
      build fb;
      Builder.ret fb None);
  Builder.set_main b "main";
  let p = Builder.finish b in
  Validate.check_exn p;
  let fn = Region_form.run_func (Prog.func_exn p "main") in
  (Pass.run_func ~prune fn, p)

let count_ckpts (fn : Prog.func) =
  Prog.fold_instrs
    (fun n _ _ ins -> match ins with Types.Ckpt _ -> n + 1 | _ -> n)
    0 fn

(* Fig. 4(b) analogue: a region whose three live-out registers are an
   immediate (100), an immediate (1), and a shift over a value from an
   earlier region. All three checkpoints must be pruned, and the recovery
   slice must rebuild them. *)
let test_fig4_pruning () =
  let result, _ =
    compile_func (fun fb ->
        let open Builder in
        let g = la fb "g" in
        (* Rg0: r3-equivalent defined here *)
        let r3_src = load fb g 0 in
        fence fb (* forces a region boundary: Rg0 | Rg1 *);
        (* Rg1: two immediates and a shift over the earlier value *)
        let r0 = imm fb 100 in
        let r1 = imm fb 1 in
        let r3 = bin fb Shl (Reg r3_src) (Imm 2) in
        fence fb (* Rg1 | Rg2 *);
        (* Rg2 uses all three *)
        store fb g 8 (Reg r0);
        store fb g 16 (Reg r1);
        store fb g 24 (Reg r3))
  in
  let unpruned, _ = compile_func ~prune:false (fun fb ->
      let open Builder in
      let g = la fb "g" in
      let r3_src = load fb g 0 in
      fence fb;
      let r0 = imm fb 100 in
      let r1 = imm fb 1 in
      let r3 = bin fb Shl (Reg r3_src) (Imm 2) in
      fence fb;
      store fb g 8 (Reg r0);
      store fb g 16 (Reg r1);
      store fb g 24 (Reg r3))
  in
  Alcotest.(check bool) "pruning removed checkpoints" true
    (count_ckpts result.fn < count_ckpts unpruned.fn);
  (* find a slice that rematerializes an immediate 100 *)
  let has_imm100 =
    Hashtbl.fold
      (fun _ slice acc ->
        acc
        || List.exists
             (fun (_, e) -> match e with Slice.EImm 100 -> true | _ -> false)
             slice)
      result.slices false
  in
  Alcotest.(check bool) "slice rebuilds the immediate" true has_imm100;
  (* and one that applies a shift over a slot *)
  let has_shift_over_slot =
    Hashtbl.fold
      (fun _ slice acc ->
        acc
        || List.exists
             (fun (_, e) ->
               match e with
               | Slice.EBin (Types.Shl, Slice.ESlot _, Slice.EImm 2) -> true
               | _ -> false)
             slice)
      result.slices false
  in
  Alcotest.(check bool) "slice shifts a checkpointed value" true
    has_shift_over_slot

(* Loop-invariant base pointers must not be re-checkpointed every
   iteration: their checkpoint at the loop-header boundary is pruned via
   rematerialization (EAddr) or inheritance. *)
let test_loop_invariant_pointer_pruned () =
  let result, _ =
    compile_func (fun fb ->
        let open Builder in
        let g = la fb "g" in
        let _ =
          loop fb ~from:(Imm 0) ~below:(Imm 8) (fun i ->
              let off = mul fb (Reg i) (Imm 8) in
              let a = add fb (Reg g) (Reg off) in
              store fb a 0 (Reg i))
        in
        ())
  in
  (* the pointer register (the La result) must not appear as a kept Ckpt
     inside the loop header block *)
  let addr_remat =
    Hashtbl.fold
      (fun _ slice acc ->
        acc
        || List.exists
             (fun (_, e) -> match e with Slice.EAddr "g" -> true | _ -> false)
             slice)
      result.slices false
  in
  Alcotest.(check bool) "pointer rematerialized from @g" true addr_remat

let test_induction_variable_kept () =
  let result, _ =
    compile_func (fun fb ->
        let open Builder in
        let g = la fb "g" in
        let _ =
          loop fb ~from:(Imm 0) ~below:(Imm 8) (fun i ->
              let off = mul fb (Reg i) (Imm 8) in
              let a = add fb (Reg g) (Reg off) in
              store fb a 0 (Reg i))
        in
        ())
  in
  (* a loop-carried register is genuinely changing: some checkpoint stays *)
  Alcotest.(check bool) "some checkpoint survives" true (count_ckpts result.fn > 0)

let test_no_prune_keeps_all () =
  let r, _ =
    compile_func ~prune:false (fun fb ->
        let open Builder in
        let g = la fb "g" in
        let v = imm fb 5 in
        fence fb;
        store fb g 0 (Reg v))
  in
  Alcotest.(check int) "kept = inserted" r.inserted r.kept;
  Alcotest.(check int) "ckpts in code" r.inserted (count_ckpts r.fn)

let test_slices_cover_live_ins () =
  (* every slice restores at least the registers later used *)
  let r, _ =
    compile_func (fun fb ->
        let open Builder in
        let g = la fb "g" in
        let a = imm fb 7 in
        let b' = load fb g 0 in
        fence fb;
        store fb g 8 (Reg (add fb (Reg a) (Reg b'))))
  in
  (* the boundary before the last region must provide both a and b' *)
  let some_slice_with_two =
    Hashtbl.fold (fun _ s acc -> acc || List.length s >= 2) r.slices false
  in
  Alcotest.(check bool) "a two-register slice exists" true some_slice_with_two

(* Functional check of slice evaluation: a slice over slots must evaluate
   to the machine's register values when slots hold them. *)
let test_slice_eval () =
  let slot_tbl = Hashtbl.create 4 in
  Hashtbl.replace slot_tbl 3 41;
  let slot r = Option.value ~default:0 (Hashtbl.find_opt slot_tbl r) in
  let addr_of _ = 0x1000 in
  let e = Slice.EBin (Types.Add, Slice.ESlot 3, Slice.EImm 1) in
  Alcotest.(check int) "slot+1" 42 (Slice.eval ~slot ~addr_of e);
  let e2 = Slice.EBin (Types.Add, Slice.EAddr "g", Slice.EImm 8) in
  Alcotest.(check int) "addr+8" 0x1008 (Slice.eval ~slot ~addr_of e2);
  Alcotest.(check (list int)) "slot refs" [ 3 ] (Slice.slot_refs e)

(* Checkpoint instrumentation must never change program semantics. *)
let test_instrumentation_preserves_semantics () =
  List.iter
    (fun name ->
      let w = Cwsp_workloads.Registry.find_exn name in
      let p = w.build ~scale:1 in
      let plain = Cwsp_interp.Machine.run_functional p in
      let compiled =
        Cwsp_compiler.Pipeline.compile ~config:Cwsp_compiler.Pipeline.cwsp p
      in
      let instrumented = Cwsp_interp.Machine.run_functional compiled.prog in
      Alcotest.(check (list int))
        (name ^ " outputs preserved")
        (Cwsp_interp.Machine.outputs plain)
        (Cwsp_interp.Machine.outputs instrumented))
    [ "bzip2"; "radix"; "tatp" ]

let () =
  Alcotest.run "ckpt"
    [
      ( "pruning",
        [
          Alcotest.test_case "fig4 analogue" `Quick test_fig4_pruning;
          Alcotest.test_case "loop-invariant pointer" `Quick test_loop_invariant_pointer_pruned;
          Alcotest.test_case "induction kept" `Quick test_induction_variable_kept;
          Alcotest.test_case "no-prune keeps all" `Quick test_no_prune_keeps_all;
        ] );
      ( "slices",
        [
          Alcotest.test_case "cover live-ins" `Quick test_slices_cover_live_ins;
          Alcotest.test_case "evaluation" `Quick test_slice_eval;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "instrumentation neutral" `Slow
            test_instrumentation_preserves_semantics;
        ] );
    ]
