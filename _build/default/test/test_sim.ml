(* Tests for the timing simulator: timestamp queues, caches, hierarchy,
   and engine-level monotonicity properties. *)

open Cwsp_sim
open Cwsp_interp

let qtest = QCheck_alcotest.to_alcotest

(* ---- Tsq ---- *)

let prop_tsq_fifo_completions_monotone =
  QCheck.Test.make ~name:"Tsq completions non-decreasing" ~count:200
    QCheck.(
      pair (int_range 1 8)
        (list_of_size (Gen.int_range 1 50)
           (pair (float_range 0.0 100.0) (float_range 0.1 5.0))))
    (fun (size, items) ->
      let q = Tsq.create ~size in
      let ready = ref 0.0 in
      List.for_all
        (fun (dt, service) ->
          ready := !ready +. dt;
          let prev = Tsq.last_completion q in
          let _, c = Tsq.push q ~ready:!ready ~service in
          c >= prev)
        items)

let prop_tsq_admit_after_ready =
  QCheck.Test.make ~name:"Tsq admit >= ready" ~count:200
    QCheck.(
      pair (int_range 1 8)
        (list_of_size (Gen.int_range 1 50)
           (pair (float_range 0.0 10.0) (float_range 0.1 5.0))))
    (fun (size, items) ->
      let q = Tsq.create ~size in
      let ready = ref 0.0 in
      List.for_all
        (fun (dt, service) ->
          ready := !ready +. dt;
          let a, c = Tsq.push q ~ready:!ready ~service in
          a >= !ready && c >= a +. service -. 1e-9)
        items)

let test_tsq_backpressure () =
  (* queue of 2 with slow service: the third push must wait *)
  let q = Tsq.create ~size:2 in
  let _, c1 = Tsq.push q ~ready:0.0 ~service:10.0 in
  let _ = Tsq.push q ~ready:0.0 ~service:10.0 in
  let a3, _ = Tsq.push q ~ready:0.0 ~service:10.0 in
  Alcotest.(check (float 1e-9)) "waits for first completion" c1 a3

let test_tsq_occupancy_bounded () =
  let q = Tsq.create ~size:4 in
  for _ = 1 to 20 do
    ignore (Tsq.push q ~ready:0.0 ~service:100.0)
  done;
  Alcotest.(check bool) "occupancy <= size" true (Tsq.occupancy q ~now:1.0 <= 4)

(* ---- Cache ---- *)

let test_cache_hit_after_fill () =
  let c = Cache.create { cname = "t"; size_bytes = 1024; assoc = 2; hit_ns = 1.0 } in
  let r1 = Cache.access c ~addr:0 ~write:false in
  Alcotest.(check bool) "first is miss" false r1.hit;
  let r2 = Cache.access c ~addr:8 ~write:false in
  Alcotest.(check bool) "same line hits" true r2.hit

let test_cache_dirty_eviction () =
  (* direct-mapped 2-set cache: two lines conflicting in set 0 *)
  let c = Cache.create { cname = "t"; size_bytes = 128; assoc = 1; hit_ns = 1.0 } in
  ignore (Cache.access c ~addr:0 ~write:true);
  let r = Cache.access c ~addr:128 ~write:false in
  Alcotest.(check (option int)) "dirty line evicted" (Some 0) r.evicted_dirty_line

let test_cache_lru () =
  (* 2-way, 1 set (128B): touch A, B, re-touch A, insert C -> B evicted *)
  let c = Cache.create { cname = "t"; size_bytes = 128; assoc = 2; hit_ns = 1.0 } in
  ignore (Cache.access c ~addr:0 ~write:true) (* A *);
  ignore (Cache.access c ~addr:128 ~write:true) (* B *);
  ignore (Cache.access c ~addr:0 ~write:false) (* refresh A *);
  let r = Cache.access c ~addr:256 ~write:false (* C *) in
  Alcotest.(check (option int)) "LRU (B) evicted" (Some 128) r.evicted_dirty_line;
  let ra = Cache.access c ~addr:0 ~write:false in
  Alcotest.(check bool) "A survives" true ra.hit

let test_cache_miss_rate () =
  let c = Cache.create { cname = "t"; size_bytes = 1024; assoc = 2; hit_ns = 1.0 } in
  ignore (Cache.access c ~addr:0 ~write:false);
  ignore (Cache.access c ~addr:0 ~write:false);
  Alcotest.(check (float 1e-9)) "1 of 2" 0.5 (Cache.miss_rate c)

(* ---- Hierarchy ---- *)

let test_hierarchy_levels () =
  let cfg =
    {
      Config.default with
      levels =
        [
          { cname = "l1"; size_bytes = 128; assoc = 1; hit_ns = 1.0 };
          { cname = "l2"; size_bytes = 1024; assoc = 2; hit_ns = 10.0 };
        ];
    }
  in
  let h = Hierarchy.create cfg in
  let o1 = Hierarchy.access h ~addr:0 ~write:false in
  Alcotest.(check bool) "cold miss reaches memory" true o1.from_memory;
  Alcotest.(check (float 1e-9)) "memory latency" cfg.mem.read_ns o1.latency_ns;
  let o2 = Hierarchy.access h ~addr:0 ~write:false in
  Alcotest.(check (float 1e-9)) "l1 hit" 1.0 o2.latency_ns;
  (* evict addr 0 from l1 (conflict), it should then hit in l2 *)
  ignore (Hierarchy.access h ~addr:128 ~write:false);
  let o3 = Hierarchy.access h ~addr:0 ~write:false in
  Alcotest.(check (float 1e-9)) "l2 hit" 10.0 o3.latency_ns

(* ---- engine properties over a fixed synthetic trace ---- *)

let synthetic_trace ~stores ~spread =
  let tr = Trace.create () in
  for i = 0 to stores - 1 do
    Trace.push tr (Event.encode Boundary ~payload:0);
    for _ = 1 to 6 do
      Trace.push tr (Event.encode Alu ~payload:0)
    done;
    Trace.push tr (Event.encode Store ~payload:(i * 8 mod spread));
    Trace.push tr (Event.encode Load ~payload:(i * 64 mod spread))
  done;
  tr

let cycles cfg scheme tr = (Engine.run_trace cfg scheme tr).elapsed_ns

let test_baseline_no_persist_stalls () =
  let tr = synthetic_trace ~stores:2000 ~spread:65536 in
  let st = Engine.run_trace Config.default Engine.Baseline tr in
  Alcotest.(check (float 0.0)) "no pb stall" 0.0 st.stall_pb_ns;
  Alcotest.(check (float 0.0)) "no rbt stall" 0.0 st.stall_rbt_ns;
  Alcotest.(check int) "no nvm writes" 0 st.nvm_writes

let test_cwsp_slower_than_baseline () =
  let tr = synthetic_trace ~stores:2000 ~spread:65536 in
  let b = cycles Config.default Engine.Baseline tr in
  let c = cycles Config.default (Engine.Cwsp Engine.cwsp_full) tr in
  Alcotest.(check bool) "cwsp >= baseline" true (c >= b)

let test_bandwidth_monotonicity () =
  let tr = synthetic_trace ~stores:4000 ~spread:65536 in
  let at bw =
    cycles
      { Config.default with path_bandwidth_gbs = bw }
      (Engine.Cwsp Engine.cwsp_full) tr
  in
  Alcotest.(check bool) "1GB/s >= 4GB/s" true (at 1.0 >= at 4.0 -. 1e-6);
  Alcotest.(check bool) "4GB/s >= 32GB/s" true (at 4.0 >= at 32.0 -. 1e-6)

let test_rbt_monotonicity () =
  let tr = synthetic_trace ~stores:4000 ~spread:65536 in
  let at n =
    cycles { Config.default with rbt_entries = n } (Engine.Cwsp Engine.cwsp_full) tr
  in
  Alcotest.(check bool) "RBT-8 >= RBT-32" true (at 8 >= at 32 -. 1e-6)

let test_wpq_monotonicity () =
  let tr = synthetic_trace ~stores:4000 ~spread:65536 in
  let at n =
    cycles { Config.default with wpq_entries = n } (Engine.Cwsp Engine.cwsp_full) tr
  in
  Alcotest.(check bool) "WPQ-8 >= WPQ-32" true (at 8 >= at 32 -. 1e-6)

let test_drain_slower_than_speculation () =
  let tr = synthetic_trace ~stores:4000 ~spread:65536 in
  let spec = cycles Config.default (Engine.Cwsp Engine.cwsp_full) tr in
  let drain =
    cycles Config.default
      (Engine.Cwsp
         { Engine.cwsp_full with mc_speculation = false; boundary_drain = true })
      tr
  in
  Alcotest.(check bool) "MC speculation helps" true (drain >= spec)

let test_ido_slower_than_cwsp () =
  let tr = synthetic_trace ~stores:4000 ~spread:65536 in
  let c = cycles Config.default (Engine.Cwsp Engine.cwsp_full) tr in
  let i = cycles Config.default Engine.Ido tr in
  Alcotest.(check bool) "ido >= cwsp" true (i >= c)

let test_storage_bytes () =
  Alcotest.(check int) "paper's 176 bytes" 176 (Engine.storage_bytes ~rbt_entries:16)

let test_deterministic_replay () =
  let tr = synthetic_trace ~stores:1000 ~spread:65536 in
  let a = cycles Config.default (Engine.Cwsp Engine.cwsp_full) tr in
  let b = cycles Config.default (Engine.Cwsp Engine.cwsp_full) tr in
  Alcotest.(check (float 0.0)) "bit-identical" a b

let () =
  Alcotest.run "sim"
    [
      ( "tsq",
        [
          qtest prop_tsq_fifo_completions_monotone;
          qtest prop_tsq_admit_after_ready;
          Alcotest.test_case "backpressure" `Quick test_tsq_backpressure;
          Alcotest.test_case "occupancy bounded" `Quick test_tsq_occupancy_bounded;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit after fill" `Quick test_cache_hit_after_fill;
          Alcotest.test_case "dirty eviction" `Quick test_cache_dirty_eviction;
          Alcotest.test_case "lru" `Quick test_cache_lru;
          Alcotest.test_case "miss rate" `Quick test_cache_miss_rate;
        ] );
      ("hierarchy", [ Alcotest.test_case "levels" `Quick test_hierarchy_levels ]);
      ( "engine",
        [
          Alcotest.test_case "baseline free" `Quick test_baseline_no_persist_stalls;
          Alcotest.test_case "cwsp >= baseline" `Quick test_cwsp_slower_than_baseline;
          Alcotest.test_case "bandwidth monotone" `Quick test_bandwidth_monotonicity;
          Alcotest.test_case "rbt monotone" `Quick test_rbt_monotonicity;
          Alcotest.test_case "wpq monotone" `Quick test_wpq_monotonicity;
          Alcotest.test_case "speculation helps" `Quick test_drain_slower_than_speculation;
          Alcotest.test_case "ido slower" `Quick test_ido_slower_than_cwsp;
          Alcotest.test_case "rbt storage = 176B" `Quick test_storage_bytes;
          Alcotest.test_case "deterministic" `Quick test_deterministic_replay;
        ] );
    ]
