test/test_mp.ml: Alcotest Array Cwsp_compiler Cwsp_interp Cwsp_recovery Cwsp_sim Cwsp_workloads Hashtbl Layout Machine Memory Multi Printf Trace W_parallel
