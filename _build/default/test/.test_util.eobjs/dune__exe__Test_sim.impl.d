test/test_sim.ml: Alcotest Cache Config Cwsp_interp Cwsp_sim Engine Event Gen Hierarchy List QCheck QCheck_alcotest Trace Tsq
