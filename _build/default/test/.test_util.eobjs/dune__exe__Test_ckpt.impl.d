test/test_ckpt.ml: Alcotest Builder Cwsp_ckpt Cwsp_compiler Cwsp_idem Cwsp_interp Cwsp_ir Cwsp_workloads Hashtbl List Option Pass Prog Region_form Slice Types Validate
