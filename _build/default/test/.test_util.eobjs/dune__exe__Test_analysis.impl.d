test/test_analysis.ml: Alcotest Alias Array Builder Cfg Cwsp_analysis Cwsp_ir Fun List Liveness Loops Prog Types Validate
