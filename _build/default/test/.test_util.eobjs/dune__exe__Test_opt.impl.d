test/test_opt.ml: Alcotest Array Builder Cwsp_analysis Cwsp_compiler Cwsp_interp Cwsp_ir Cwsp_workloads List Printf Prog Types Validate
