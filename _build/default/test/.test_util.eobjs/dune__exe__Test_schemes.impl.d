test/test_schemes.ml: Alcotest Config Cwsp_compiler Cwsp_core Cwsp_interp Cwsp_schemes Cwsp_sim Cwsp_util Cwsp_workloads List Printf Schemes
