test/test_recovery.ml: Alcotest Array Cwsp_ckpt Cwsp_compiler Cwsp_core Cwsp_interp Cwsp_ir Cwsp_recovery Cwsp_runtime Cwsp_workloads List Pipeline Printf
