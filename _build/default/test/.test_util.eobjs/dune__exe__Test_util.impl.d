test/test_util.ml: Alcotest Array Cwsp_util Fun Gen List QCheck QCheck_alcotest Rng Stats String Table
