test/test_interp.ml: Alcotest Builder Cwsp_interp Cwsp_ir Event List Machine Memory QCheck QCheck_alcotest Trace Types Validate
