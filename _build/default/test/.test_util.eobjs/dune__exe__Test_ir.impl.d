test/test_ir.ml: Alcotest Builder Cwsp_compiler Cwsp_interp Cwsp_ir Cwsp_workloads Eval List Parse Pp Prog QCheck QCheck_alcotest String Types Validate
