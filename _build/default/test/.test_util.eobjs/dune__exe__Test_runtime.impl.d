test/test_runtime.ml: Alcotest Builder Cwsp_compiler Cwsp_idem Cwsp_interp Cwsp_ir Cwsp_recovery Cwsp_runtime List Machine Prog Types Validate
