test/test_idem.mli:
