test/test_integration.ml: Alcotest Config Cwsp_compiler Cwsp_core Cwsp_experiments Cwsp_interp Cwsp_schemes Cwsp_sim Cwsp_util Cwsp_workloads List Nvm Printf Schemes Stats
