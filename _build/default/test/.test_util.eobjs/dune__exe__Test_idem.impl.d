test/test_idem.ml: Alcotest Antidep Array Builder Cwsp_idem Cwsp_ir Cwsp_runtime Hitting List Prog QCheck QCheck_alcotest Region_form Types Validate
