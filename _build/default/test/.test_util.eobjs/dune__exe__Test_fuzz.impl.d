test/test_fuzz.ml: Alcotest Array Builder Cwsp_analysis Cwsp_compiler Cwsp_idem Cwsp_interp Cwsp_ir Cwsp_recovery Cwsp_runtime Cwsp_util Hashtbl List Printf Prog Rng Types Validate
