test/test_workloads.ml: Alcotest Cwsp_core Cwsp_interp Cwsp_ir Cwsp_schemes Cwsp_sim Cwsp_util Cwsp_workloads Defs List Machine Memory Printf Registry Trace Validate
