(* Tests for the scalar optimizer (constant folding, copy propagation,
   dead-code elimination) and the dominator analysis it leans on. *)

open Cwsp_ir
open Types

let func_of body =
  let b = Builder.program () in
  Builder.global b "g" ~size:64 ();
  Builder.func b "main" ~nparams:0 (fun fb ->
      body fb;
      Builder.ret fb None);
  Builder.set_main b "main";
  let p = Builder.finish b in
  Validate.check_exn p;
  Prog.func_exn p "main"

let instr_count fn = Prog.instr_count fn

let all_instrs fn =
  Array.to_list fn.Prog.blocks |> List.concat_map (fun (b : Prog.block) -> b.instrs)

(* ---- constant folding ---- *)

let test_fold_constants () =
  let fn =
    func_of (fun fb ->
        let open Builder in
        let a = imm fb 6 in
        let b' = imm fb 7 in
        let c = mul fb (Reg a) (Reg b') in
        let g = la fb "g" in
        store fb g 0 (Reg c))
  in
  let fn' = Cwsp_compiler.Opt.run_func fn in
  (* the product must be folded to 42 and stored as an immediate *)
  let stores_42 =
    List.exists
      (fun i -> match i with Store (_, 0, Imm 42) -> true | _ -> false)
      (all_instrs fn')
  in
  Alcotest.(check bool) "folded to store-imm" true stores_42;
  Alcotest.(check bool) "shrank" true (instr_count fn' < instr_count fn)

let test_fold_branch () =
  let fn =
    func_of (fun fb ->
        let open Builder in
        let c = cmp fb Lt (Imm 1) (Imm 2) in
        let g = la fb "g" in
        if_ fb c
          ~then_:(fun () -> store fb g 0 (Imm 1))
          ~else_:(fun () -> store fb g 0 (Imm 2)))
  in
  let fn' = Cwsp_compiler.Opt.run_func fn in
  (* the conditional branch must have become an unconditional jump *)
  let has_br =
    Array.exists
      (fun (b : Prog.block) -> match b.term with Br _ -> true | _ -> false)
      fn'.blocks
  in
  Alcotest.(check bool) "branch folded" false has_br

(* ---- copy propagation ---- *)

let test_copy_propagation () =
  let fn =
    func_of (fun fb ->
        let open Builder in
        let g = la fb "g" in
        let v = load fb g 0 in
        let w = mov fb (Reg v) in
        let x = mov fb (Reg w) in
        store fb g 8 (Reg x))
  in
  let fn' = Cwsp_compiler.Opt.run_func fn in
  (* the copies are dead after propagation; store reads the load directly *)
  Alcotest.(check bool) "copies eliminated" true
    (instr_count fn' <= instr_count fn - 2)

(* ---- dead code elimination ---- *)

let test_dce_removes_dead_chain () =
  let fn =
    func_of (fun fb ->
        let open Builder in
        let a = imm fb 1 in
        let b' = add fb (Reg a) (Imm 2) in
        let _dead = mul fb (Reg b') (Imm 3) in
        let g = la fb "g" in
        store fb g 0 (Imm 9))
  in
  let fn' = Cwsp_compiler.Opt.run_func fn in
  (* only la + store remain *)
  Alcotest.(check int) "two instructions left" 2 (instr_count fn')

let test_dce_keeps_side_effects () =
  let fn =
    func_of (fun fb ->
        let open Builder in
        let g = la fb "g" in
        let _ret_unused = atomic_rmw fb Add g 0 (Imm 1) in
        store fb g 8 (Imm 5);
        fence fb)
  in
  let fn' = Cwsp_compiler.Opt.run_func fn in
  let kinds = all_instrs fn' in
  Alcotest.(check bool) "atomic kept" true
    (List.exists (function Atomic_rmw _ -> true | _ -> false) kinds);
  Alcotest.(check bool) "fence kept" true
    (List.exists (function Fence -> true | _ -> false) kinds);
  Alcotest.(check bool) "store kept" true
    (List.exists (function Store _ -> true | _ -> false) kinds)

(* ---- end-to-end semantics preservation ---- *)

let test_semantics_preserved () =
  List.iter
    (fun name ->
      let w = Cwsp_workloads.Registry.find_exn name in
      let p = w.build ~scale:1 in
      let plain = Cwsp_interp.Machine.run_functional p in
      let opt = Cwsp_interp.Machine.run_functional (Cwsp_compiler.Opt.run p) in
      Alcotest.(check (list int))
        (name ^ " outputs")
        (Cwsp_interp.Machine.outputs plain)
        (Cwsp_interp.Machine.outputs opt);
      Alcotest.(check bool) (name ^ " memory") true
        (Cwsp_interp.Memory.equal plain.mem opt.mem))
    [ "bzip2"; "sjeng"; "radix"; "c" ]

let test_idempotent () =
  let w = Cwsp_workloads.Registry.find_exn "gobmk" in
  let p1 = Cwsp_compiler.Opt.run (w.build ~scale:1) in
  let p2 = Cwsp_compiler.Opt.run p1 in
  Alcotest.(check int) "fixpoint reached" (Prog.total_instr_count p1)
    (Prog.total_instr_count p2)

(* ---- dominators ---- *)

let test_dominators_diamond () =
  let fn =
    func_of (fun fb ->
        let open Builder in
        let g = la fb "g" in
        let c = load fb g 0 in
        if_ fb c
          ~then_:(fun () -> store fb g 8 (Imm 1))
          ~else_:(fun () -> store fb g 8 (Imm 2));
        store fb g 16 (Imm 3))
  in
  let d = Cwsp_analysis.Dominators.compute fn in
  (* entry dominates everything; neither branch arm dominates the join *)
  let n = Array.length fn.blocks in
  for b = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "entry dominates %d" b)
      true
      (Cwsp_analysis.Dominators.dominates d ~a:0 ~b)
  done;
  (* blocks 1 and 2 are the arms, 3 the join (builder layout) *)
  Alcotest.(check bool) "arm does not dominate join" false
    (Cwsp_analysis.Dominators.dominates d ~a:1 ~b:3);
  Alcotest.(check (option int)) "join's idom is entry" (Some 0)
    (Cwsp_analysis.Dominators.immediate_dominator d 3)

let test_dominators_loop () =
  let fn =
    func_of (fun fb ->
        let open Builder in
        let g = la fb "g" in
        let _ =
          loop fb ~from:(Imm 0) ~below:(Imm 4) (fun i ->
              store fb (bin fb Add (Reg g) (Reg (bin fb Shl (Reg i) (Imm 3)))) 0 (Reg i))
        in
        ())
  in
  let d = Cwsp_analysis.Dominators.compute fn in
  let headers = Cwsp_analysis.Loops.headers fn in
  Array.iteri
    (fun h is_h ->
      if is_h then
        (* the loop header dominates the loop body (its successor inside
           the loop) *)
        List.iter
          (fun s ->
            if s <> h then
              Alcotest.(check bool) "header dominates body" true
                (Cwsp_analysis.Dominators.dominates d ~a:h ~b:s))
          (Cwsp_analysis.Cfg.successors fn h))
    headers

let () =
  Alcotest.run "opt"
    [
      ( "fold",
        [
          Alcotest.test_case "constants" `Quick test_fold_constants;
          Alcotest.test_case "branch" `Quick test_fold_branch;
          Alcotest.test_case "copies" `Quick test_copy_propagation;
        ] );
      ( "dce",
        [
          Alcotest.test_case "dead chain" `Quick test_dce_removes_dead_chain;
          Alcotest.test_case "side effects" `Quick test_dce_keeps_side_effects;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "preserved" `Slow test_semantics_preserved;
          Alcotest.test_case "idempotent" `Quick test_idempotent;
        ] );
      ( "dominators",
        [
          Alcotest.test_case "diamond" `Quick test_dominators_diamond;
          Alcotest.test_case "loop" `Quick test_dominators_loop;
        ] );
    ]
