(** Functional interpreter for IR programs.

    The machine is an explicit-state stepper so that higher layers can do
    more than run-to-completion: the recovery harness snapshots frames at
    region boundaries, logs store old-values, stops at arbitrary
    instruction counts and resumes — everything needed to emulate power
    failure and validate the paper's recovery protocol. *)

open Cwsp_ir

exception Fuel_exhausted
exception Trap of string

(** {2 Linking} *)

type lfunc = {
  lf_name : string;
  findex : int;
  nregs : int;
  nparams : int;
  code : Types.instr array array; (** per block *)
  terms : Types.term array;
}

type linked = {
  source : Prog.t;
  lfuncs : lfunc array;
  fidx : (string, int) Hashtbl.t;
  global_addr : (string, int) Hashtbl.t;
  main_idx : int;
}

(** Name of the output intrinsic: [call __out(v)] appends [v] to the
    machine's observable output vector. *)
val out_intrinsic : string

(** Resolve functions and lay out globals (64-byte aligned, from
    [Layout.global_base]). *)
val link : Prog.t -> linked

(** {2 Machine state} *)

type frame = {
  lf : lfunc;
  regs : int array;
  mutable blk : int;
  mutable idx : int;
  ret_to : Types.reg option; (** caller register receiving the return value *)
}

type status = Running | Halted

type t = {
  linked : linked;
  mem : Memory.t;
  mutable frames : frame list; (** head = current frame *)
  mutable status : status;
  mutable steps : int;
  mutable outputs : int list;  (** reversed observable output *)
  mutable depth : int;         (** call-stack depth, for checkpoint slots *)
  tid : int;
}

(** Fresh machine with globals initialized; [main] must take no
    parameters. *)
val create : ?tid:int -> linked -> t

(** Observable output, oldest first. *)
val outputs : t -> int list

val steps : t -> int

(** Resume a machine on an existing (post-recovery) memory image: either
    restart [main] ([`Fresh]) or continue from a given call stack
    ([`Frames], head = current frame positioned just after a region
    boundary). Global initializers are NOT re-applied. *)
val resume :
  ?tid:int ->
  linked ->
  mem:Memory.t ->
  frames:[ `Frames of frame list | `Fresh ] ->
  depth:int ->
  t

(** {2 Execution} *)

(** Hooks invoked during stepping: [on_event] receives packed commit
    events ([Event]); [on_store] every memory write with its old value
    (what undo logging consumes). *)
type hooks = {
  on_event : int -> unit;
  on_store : addr:int -> old:int -> value:int -> unit;
}

val no_hooks : hooks

(** Execute one instruction (or terminator). Raises [Trap] on dynamic
    errors; no-op once halted. *)
val step : t -> hooks -> unit

(** Run until halt; raises [Fuel_exhausted] beyond [fuel] steps. *)
val run : ?fuel:int -> t -> hooks -> unit

(** Link, run to completion, return the machine and its commit trace. *)
val trace_of_program : ?fuel:int -> Prog.t -> t * Trace.t

(** Run functionally with no trace. *)
val run_functional : ?fuel:int -> Prog.t -> t
