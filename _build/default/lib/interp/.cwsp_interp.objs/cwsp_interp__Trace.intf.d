lib/interp/trace.mli:
