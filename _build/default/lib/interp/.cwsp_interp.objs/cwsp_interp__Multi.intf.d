lib/interp/multi.mli: Cwsp_ir Machine Memory Prog Trace
