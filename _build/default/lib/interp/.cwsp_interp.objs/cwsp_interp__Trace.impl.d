lib/interp/trace.ml: Array Event List
