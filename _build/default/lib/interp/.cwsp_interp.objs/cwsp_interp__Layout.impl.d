lib/interp/layout.ml:
