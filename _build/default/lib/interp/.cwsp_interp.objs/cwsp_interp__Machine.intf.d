lib/interp/machine.mli: Cwsp_ir Hashtbl Memory Prog Trace Types
