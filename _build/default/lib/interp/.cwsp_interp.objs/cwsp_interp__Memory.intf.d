lib/interp/memory.mli:
