lib/interp/event.mli:
