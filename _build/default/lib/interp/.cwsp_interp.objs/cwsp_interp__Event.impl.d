lib/interp/event.ml: Printf
