lib/interp/machine.ml: Array Cwsp_ir Eval Event Hashtbl Layout List Memory Prog Trace Types
