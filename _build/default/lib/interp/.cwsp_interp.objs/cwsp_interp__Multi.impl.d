lib/interp/multi.ml: Array Cwsp_ir Hashtbl List Machine Memory Option Prog Trace
