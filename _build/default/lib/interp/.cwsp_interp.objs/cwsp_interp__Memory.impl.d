lib/interp/memory.ml: Array Hashtbl Printf
