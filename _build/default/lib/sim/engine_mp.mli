(** Multi-core timing engine: per-core L1D/WB/PB/RBT, shared L2+ levels,
    WPQs and media bandwidth. Per-thread commit traces are replayed in
    global time order (the core with the smallest clock advances), so
    shared-queue contention is observed in arrival order. *)

open Cwsp_interp

type result = {
  per_core : Stats.t array;
  elapsed_ns : float; (** completion of the slowest core *)
}

(** Replay per-thread traces (from [Multi.traces_of_program]) under
    either no persistence or the full cWSP hardware. *)
val run_traces :
  Config.t -> [ `Baseline | `Cwsp ] -> Trace.t array -> result
