(** Bounded FIFO timestamp queue — the simulator's workhorse.

    Hardware queues (WPQ, redo buffers, write buffers) are modeled as a
    single-server FIFO with [size] slots: an item becoming ready at time
    [r] is admitted once a slot is free (backpressure), then completes
    after the in-order service of everything ahead of it. Only
    timestamps are stored, which is what makes replaying a trace through
    dozens of configurations cheap. *)

type t = {
  size : int;
  completions : float array; (* ring of the last [size] completion times *)
  mutable count : int;       (* total items ever pushed *)
  mutable last_completion : float;
}

let create ~size =
  if size <= 0 then invalid_arg "Tsq.create: size must be positive";
  { size; completions = Array.make size 0.0; count = 0; last_completion = 0.0 }

(** [push t ~ready ~service] returns [(admit, completion)]:
    [admit >= ready] is when a slot frees up (equals [ready] unless the
    queue is full of unfinished work), and
    [completion = max(admit, previous completion) + service]. *)
let push t ~ready ~service =
  let admit =
    if t.count < t.size then ready
    else
      (* slot of the item [size] pushes ago must have completed *)
      let oldest = t.completions.(t.count mod t.size) in
      Float.max ready oldest
  in
  let completion = Float.max admit t.last_completion +. service in
  t.completions.(t.count mod t.size) <- completion;
  t.count <- t.count + 1;
  t.last_completion <- completion;
  (admit, completion)

let last_completion t = t.last_completion

(** Entries still in flight (completion after [now]); capped at [size]. *)
let occupancy t ~now =
  let n = min t.count t.size in
  let occ = ref 0 in
  for i = 0 to n - 1 do
    if t.completions.(i) > now then incr occ
  done;
  !occ
