(** Energy accounting for the persistence schemes.

    The paper's case against eADR and Capri is substantially about energy:
    both must JIT-checkpoint large volatile buffers to NVM on power
    failure, which requires permanently provisioned batteries/capacitors
    sized for the flush (Sections I, II-D), with the maintenance and
    environmental burden that implies. cWSP only relies on Intel ADR's
    existing guarantee: flushing the tiny WPQs.

    Two quantities are reported:

    - [backup_*]: the residual-energy requirement — how many bytes of
      volatile state must reach NVM after power is cut, and the energy to
      push them there;
    - [write_energy_*]: steady-state NVM write energy per 1000 program
      stores, driven by each scheme's persist granularity and write
      amplification.

    Constants are representative published figures (documented below);
    as everywhere in this repository, relative magnitudes are the point. *)

(* ~1.5 nJ to write a 64-byte line to PCM-class NVM (tens of pJ/bit). *)
let nvm_write_nj_per_line = 1.5
let nvm_write_nj_per_byte = nvm_write_nj_per_line /. 64.0

type backup = {
  scheme : string;
  volatile_bytes : int; (* battery-backed state to flush on power failure *)
  backup_uj : float;    (* energy to flush it to NVM *)
}

let flush_uj bytes = float_of_int bytes *. nvm_write_nj_per_byte /. 1000.0

(* cWSP: only the per-MC WPQs are in the persistence domain (Intel ADR). *)
let cwsp_backup (cfg : Config.t) =
  let bytes = cfg.n_mcs * cfg.wpq_entries * 8 in
  { scheme = "cWSP (ADR WPQs)"; volatile_bytes = bytes; backup_uj = flush_uj bytes }

(* Capri: battery-backed redo buffers, (N+1) x M x 18KB (Section II-D). *)
let capri_backup ~cores (cfg : Config.t) =
  let bytes = (cfg.n_mcs + 1) * cores * 18 * 1024 in
  { scheme = "Capri (redo+proxy buffers)"; volatile_bytes = bytes;
    backup_uj = flush_uj bytes }

(* eADR: the entire cache hierarchy must be flushed on power failure. *)
let eadr_backup (cfg : Config.t) =
  let bytes =
    List.fold_left
      (fun acc (l : Config.cache_level) ->
        if l.cname = "DRAM$" then acc else acc + l.size_bytes)
      0 cfg.levels
  in
  { scheme = "eADR (all SRAM caches)"; volatile_bytes = bytes;
    backup_uj = flush_uj bytes }

(* LightPC / pioneering WSP: all volatile state including DRAM. *)
let full_system_backup ~dram_bytes (cfg : Config.t) =
  let b = (eadr_backup cfg).volatile_bytes + dram_bytes in
  { scheme = "full-system (incl. DRAM)"; volatile_bytes = b; backup_uj = flush_uj b }

(** Steady-state NVM write energy per 1000 committed program stores. *)
type write_energy = {
  we_scheme : string;
  bytes_per_store : float; (* persist granularity x write amplification *)
  uj_per_kstore : float;
}

let write_energy ~name ~bytes_per_store =
  {
    we_scheme = name;
    bytes_per_store;
    uj_per_kstore = 1000.0 *. bytes_per_store *. nvm_write_nj_per_byte /. 1000.0;
  }

(* cWSP: 8B data + 1/8 line of write-combined undo log (Section V-B2);
   checkpoints roughly double entry count on write-dense code, captured
   by the simulator's nvm_writes statistic rather than here. *)
let cwsp_write_energy = write_energy ~name:"cWSP (8B + log)" ~bytes_per_store:9.0

(* Capri: 64B line + 8B metadata, 8x hardware logging amplification
   claimed by the paper (Section II-D). *)
let capri_write_energy = write_energy ~name:"Capri (64B x 8 logging)" ~bytes_per_store:(72.0 *. 8.0)

(* baseline / eADR: dirty lines eventually written back once, amortized
   over the ~8 stores a dirty line absorbs. *)
let eadr_write_energy = write_energy ~name:"eADR (line writebacks)" ~bytes_per_store:8.0

let all_backups ?(cores = 8) ?(dram_bytes = Config.mib 64) (cfg : Config.t) =
  [
    cwsp_backup cfg;
    capri_backup ~cores cfg;
    eadr_backup cfg;
    full_system_backup ~dram_bytes cfg;
  ]

let all_write_energies =
  [ cwsp_write_energy; capri_write_energy; eadr_write_energy ]
