(** The cache-hierarchy walker: one [Cache.t] per configured level; an
    access is served by the first hitting level and allocates the line in
    every level above. Dirty L1 evictions are surfaced to the engine (they
    enter the L1D write buffer); inner-level evictions install one level
    down; LLC evictions are counted (persist-path schemes silently drop
    them — the data already traveled the persist path). *)

type t = {
  cfg : Config.t;
  caches : Cache.t array;
  hit_ns : float array;
  mutable nvm_reads : int;
  mutable llc_dirty_evictions : int;
}

val create : Config.t -> t

type outcome = {
  latency_ns : float;             (** serving-point latency, pre-MLP *)
  hit_level : int;                (** 0-based; = number of levels for memory *)
  l1_dirty_eviction : int option; (** line entering the L1D write buffer *)
  from_memory : bool;
  llc_eviction : bool;
}

val access : t -> addr:int -> write:bool -> outcome

(** A writeback arriving from the L1D write buffer installs into L2. *)
val wb_install : t -> line_addr:int -> unit

val l1_miss_rate : t -> float
val llc_miss_rate : t -> float
