(** Bounded FIFO timestamp queue — the simulator's workhorse.

    Hardware queues (WPQ, write buffers) are modeled as a single-server
    FIFO with [size] slots: an item becoming ready at time r is admitted
    once a slot frees (backpressure), then completes after the in-order
    service of everything ahead of it. Only timestamps are stored. *)

type t

val create : size:int -> t

(** [(admit, completion)]: [admit >= ready] (delayed while all slots hold
    unfinished work); [completion = max(admit, previous completion) +
    service]. *)
val push : t -> ready:float -> service:float -> float * float

val last_completion : t -> float

(** Entries still in flight at [now]; at most [size]. *)
val occupancy : t -> now:float -> int
