lib/sim/engine.ml: Array Config Cwsp_interp Cwsp_util Event Float Hashtbl Hierarchy Stats Trace Tsq
