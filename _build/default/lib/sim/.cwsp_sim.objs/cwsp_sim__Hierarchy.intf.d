lib/sim/hierarchy.mli: Cache Config
