lib/sim/hierarchy.ml: Array Cache Config List
