lib/sim/stats.ml: Cwsp_util Printf
