lib/sim/tsq.mli:
