lib/sim/cache.ml: Array Config Hashtbl
