lib/sim/nvm.mli:
