lib/sim/tsq.ml: Array Float
