lib/sim/config.ml: Array Nvm
