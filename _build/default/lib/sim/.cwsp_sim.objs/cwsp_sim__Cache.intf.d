lib/sim/cache.mli: Config
