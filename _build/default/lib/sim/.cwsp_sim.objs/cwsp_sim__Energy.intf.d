lib/sim/energy.mli: Config
