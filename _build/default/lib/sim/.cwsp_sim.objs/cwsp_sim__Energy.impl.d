lib/sim/energy.ml: Config List
