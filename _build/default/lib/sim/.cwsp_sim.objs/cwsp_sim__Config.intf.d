lib/sim/config.mli: Nvm
