lib/sim/engine_mp.ml: Array Cache Config Cwsp_interp Engine Event Float Hashtbl Layout List Stats Trace Tsq
