lib/sim/engine_mp.mli: Config Cwsp_interp Stats Trace
