lib/sim/nvm.ml:
