lib/sim/engine.mli: Config Cwsp_interp Stats
