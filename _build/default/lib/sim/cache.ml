(** Set-associative write-back, write-allocate cache with LRU replacement.

    Tag storage is a hash table keyed by set index, so a 4GB direct-mapped
    DRAM cache costs memory proportional to the sets actually touched —
    essential for simulating Intel-memory-mode-style DRAM caches without
    allocating gigabytes of tag arrays. *)

type way = { mutable tag : int; mutable dirty : bool; mutable lru : int }

type t = {
  level : Config.cache_level;
  nsets : int;
  assoc : int;
  sets : (int, way array) Hashtbl.t;
  mutable tick : int; (* LRU clock *)
  mutable hits : int;
  mutable misses : int;
}

let line_bytes = 64

let create (level : Config.cache_level) =
  let nsets = max 1 (level.size_bytes / (line_bytes * level.assoc)) in
  {
    level;
    nsets;
    assoc = level.assoc;
    sets = Hashtbl.create 4096;
    tick = 0;
    hits = 0;
    misses = 0;
  }

type result = {
  hit : bool;
  evicted_dirty_line : int option; (* line address of a dirty eviction *)
}

(** Access the line containing [addr]; allocates on miss. [write] marks
    the line dirty. *)
let access t ~addr ~write : result =
  t.tick <- t.tick + 1;
  let line = addr / line_bytes in
  let set_idx = line mod t.nsets in
  let tag = line / t.nsets in
  let ways =
    match Hashtbl.find_opt t.sets set_idx with
    | Some w -> w
    | None ->
      let w = Array.init t.assoc (fun _ -> { tag = -1; dirty = false; lru = 0 }) in
      Hashtbl.add t.sets set_idx w;
      w
  in
  let rec find i = if i >= t.assoc then None
    else if ways.(i).tag = tag then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i ->
    t.hits <- t.hits + 1;
    ways.(i).lru <- t.tick;
    if write then ways.(i).dirty <- true;
    { hit = true; evicted_dirty_line = None }
  | None ->
    t.misses <- t.misses + 1;
    (* victim: invalid way if any, else least-recently used *)
    let victim = ref 0 in
    (try
       for i = 0 to t.assoc - 1 do
         if ways.(i).tag = -1 then begin
           victim := i;
           raise Exit
         end;
         if ways.(i).lru < ways.(!victim).lru then victim := i
       done
     with Exit -> ());
    let w = ways.(!victim) in
    let evicted =
      if w.tag >= 0 && w.dirty then
        Some (((w.tag * t.nsets) + set_idx) * line_bytes)
      else None
    in
    w.tag <- tag;
    w.dirty <- write;
    w.lru <- t.tick;
    { hit = false; evicted_dirty_line = evicted }

(** Mark a line dirty without an access (used for writebacks arriving from
    an upper level); allocates like a write access. *)
let install_dirty t ~line_addr = ignore (access t ~addr:line_addr ~write:true)

let miss_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.misses /. float_of_int total
