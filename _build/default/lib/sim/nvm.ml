(** Main-memory technology models: NVM technologies (Section IX-M) and
    CXL-attached devices (Table I / Section IX-C).

    [read_ns] is the access latency charged to loads that miss every cache
    level; [write_bw_gbs] bounds how fast the memory controller's WPQ can
    drain to media, which is what produces write backpressure. *)

type t = {
  mem_name : string;
  read_ns : float;
  write_ns : float;          (* single-write media latency (documentation) *)
  write_bw_gbs : float;      (* sustained media write bandwidth *)
}

(* Intel-Optane-like PMEM, the paper's default (175ns read / 90ns write,
   ~2.3GB/s sustained write bandwidth per the cited FAST'20 study). *)
let pmem = { mem_name = "PMEM"; read_ns = 175.0; write_ns = 90.0; write_bw_gbs = 2.3 }

(* Faster NVM technologies for Fig. 27. *)
let sttram = { mem_name = "STT-MRAM"; read_ns = 60.0; write_ns = 40.0; write_bw_gbs = 8.0 }
let reram = { mem_name = "ReRAM"; read_ns = 40.0; write_ns = 25.0; write_bw_gbs = 12.0 }

(* DRAM as main memory — the baseline memory of Fig. 1. *)
let dram = { mem_name = "DRAM"; read_ns = 60.0; write_ns = 30.0; write_bw_gbs = 25.0 }

(* CXL devices of Table I. Latencies from the table (read/write); NVDIMM
   bandwidths from the table's max-bandwidth column (derated for writes),
   CXL-D is Optane behind a 70ns CXL interconnect. *)
let cxl_a = { mem_name = "CXL-A"; read_ns = 158.0; write_ns = 120.0; write_bw_gbs = 19.2 }
let cxl_b = { mem_name = "CXL-B"; read_ns = 223.0; write_ns = 139.0; write_bw_gbs = 9.6 }
let cxl_c = { mem_name = "CXL-C"; read_ns = 348.0; write_ns = 241.0; write_bw_gbs = 12.8 }
let cxl_d = { mem_name = "CXL-D"; read_ns = 245.0; write_ns = 160.0; write_bw_gbs = 2.3 }

(* CXL DRAM: the Fig. 1 comparison point for CXL PMEM. *)
let cxl_dram = { mem_name = "CXL-DRAM"; read_ns = 130.0; write_ns = 100.0; write_bw_gbs = 25.6 }
let cxl_pmem = cxl_d

let all_techs = [ pmem; sttram; reram ]
let cxl_devices = [ cxl_a; cxl_b; cxl_c; cxl_d ]
