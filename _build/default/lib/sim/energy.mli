(** Energy accounting for the persistence schemes — the quantitative form
    of the paper's argument (Sections I, II-D) that eADR/Capri-style JIT
    checkpointing requires unsustainable residual energy, while cWSP only
    relies on Intel ADR's existing WPQ-flush guarantee. *)

val nvm_write_nj_per_line : float
val nvm_write_nj_per_byte : float

type backup = {
  scheme : string;
  volatile_bytes : int; (** battery-backed state to flush on power failure *)
  backup_uj : float;    (** energy to flush it to NVM *)
}

val cwsp_backup : Config.t -> backup
val capri_backup : cores:int -> Config.t -> backup
val eadr_backup : Config.t -> backup
val full_system_backup : dram_bytes:int -> Config.t -> backup
val all_backups : ?cores:int -> ?dram_bytes:int -> Config.t -> backup list

(** Steady-state NVM write energy per 1000 committed program stores. *)
type write_energy = {
  we_scheme : string;
  bytes_per_store : float;
  uj_per_kstore : float;
}

val cwsp_write_energy : write_energy
val capri_write_energy : write_energy
val eadr_write_energy : write_energy
val all_write_energies : write_energy list
