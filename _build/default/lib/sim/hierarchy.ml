(** The cache hierarchy walker.

    Maintains one [Cache.t] per configured level; an access is served by
    the first hitting level (charged that level's latency) and allocates
    the line in every level above. Dirty evictions from the L1 are
    surfaced to the engine (they enter the L1D write buffer, which the
    stale-read machinery of Section V-A1 delays); dirty evictions from
    inner levels are installed one level down; dirty evictions from the
    LLC are counted — under persist-path schemes they are silently dropped
    (the data already traveled the persist path), in the baseline they are
    plain memory write-backs. *)

type t = {
  cfg : Config.t;
  caches : Cache.t array;
  hit_ns : float array; (* per level *)
  mutable nvm_reads : int;
  mutable llc_dirty_evictions : int;
}

let create (cfg : Config.t) =
  {
    cfg;
    caches = Array.of_list (List.map Cache.create cfg.levels);
    hit_ns = Array.of_list (List.map (fun (l : Config.cache_level) -> l.hit_ns) cfg.levels);
    nvm_reads = 0;
    llc_dirty_evictions = 0;
  }

type outcome = {
  latency_ns : float;             (* serving-point latency, before MLP scaling *)
  hit_level : int;                (* 0-based; number of levels = memory *)
  l1_dirty_eviction : int option; (* line address entering the L1D WB *)
  from_memory : bool;             (* served by main memory *)
  llc_eviction : bool;            (* caused a dirty LLC eviction *)
}

let access t ~addr ~write : outcome =
  let n = Array.length t.caches in
  let l1_evict = ref None in
  let llc_evict = ref false in
  let rec walk i =
    if i >= n then begin
      t.nvm_reads <- t.nvm_reads + 1;
      (i, t.cfg.mem.read_ns)
    end
    else begin
      let r = Cache.access t.caches.(i) ~addr ~write:(write && i = 0) in
      (match r.evicted_dirty_line with
      | None -> ()
      | Some line ->
        if i = 0 then l1_evict := Some line
        else if i = n - 1 then begin
          t.llc_dirty_evictions <- t.llc_dirty_evictions + 1;
          llc_evict := true
        end
        else Cache.install_dirty t.caches.(i + 1) ~line_addr:line);
      if r.hit then (i, t.hit_ns.(i)) else walk (i + 1)
    end
  in
  let hit_level, latency = walk 0 in
  {
    latency_ns = latency;
    hit_level;
    l1_dirty_eviction = !l1_evict;
    from_memory = hit_level >= n;
    llc_eviction = !llc_evict;
  }

(** A writeback arriving from the L1D write buffer installs into L2 (or
    is dropped to memory accounting when the L1 is the only level). *)
let wb_install t ~line_addr =
  if Array.length t.caches > 1 then Cache.install_dirty t.caches.(1) ~line_addr

let l1_miss_rate t = Cache.miss_rate t.caches.(0)
let llc_miss_rate t = Cache.miss_rate t.caches.(Array.length t.caches - 1)
