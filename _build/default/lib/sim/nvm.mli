(** Main-memory technology models: NVM technologies (Section IX-M) and
    CXL-attached devices (Table I / Section IX-C). [read_ns] is charged
    to loads that miss every cache level; [write_bw_gbs] bounds the WPQ
    drain and produces write backpressure. *)

type t = {
  mem_name : string;
  read_ns : float;
  write_ns : float;
  write_bw_gbs : float;
}

(** Intel-Optane-like PMEM, the paper's default. *)
val pmem : t

val sttram : t
val reram : t

(** DRAM main memory, the Fig. 1 baseline. *)
val dram : t

val cxl_a : t
val cxl_b : t
val cxl_c : t
val cxl_d : t
val cxl_dram : t
val cxl_pmem : t

(** The Fig. 27 sweep. *)
val all_techs : t list

(** Table I. *)
val cxl_devices : t list
