(** Per-run simulation statistics — everything the paper's figures plot. *)

type t = {
  mutable elapsed_ns : float;
  mutable instructions : int;
  mutable loads : int;
  mutable stores : int; (* data stores *)
  mutable ckpt_stores : int;
  mutable boundaries : int;
  mutable atomics : int;
  mutable fences : int;
  (* memory system *)
  mutable nvm_reads : int;
  mutable l1_miss_rate : float;
  mutable llc_miss_rate : float;
  (* persistence *)
  mutable nvm_writes : int;  (* 8-byte persist-path deliveries *)
  mutable log_writes : int;  (* undo-log writes at the MCs *)
  mutable wpq_hits : int;    (* loads that found a pending WPQ entry *)
  (* stall breakdown, ns *)
  mutable stall_pb_ns : float;
  mutable stall_rbt_ns : float;
  mutable stall_drain_ns : float; (* region-end drains (non-speculative) *)
  mutable stall_sync_ns : float;  (* fences/atomics *)
  mutable stall_wb_ns : float;    (* write-buffer backpressure *)
  mutable stall_wpq_hit_ns : float;
  mutable stall_redo_ns : float;  (* Capri redo-buffer backpressure *)
  (* occupancy *)
  wb_occupancy : Cwsp_util.Stats.Acc.t;
}

let create () =
  {
    elapsed_ns = 0.0;
    instructions = 0;
    loads = 0;
    stores = 0;
    ckpt_stores = 0;
    boundaries = 0;
    atomics = 0;
    fences = 0;
    nvm_reads = 0;
    l1_miss_rate = 0.0;
    llc_miss_rate = 0.0;
    nvm_writes = 0;
    log_writes = 0;
    wpq_hits = 0;
    stall_pb_ns = 0.0;
    stall_rbt_ns = 0.0;
    stall_drain_ns = 0.0;
    stall_sync_ns = 0.0;
    stall_wb_ns = 0.0;
    stall_wpq_hit_ns = 0.0;
    stall_redo_ns = 0.0;
    wb_occupancy = Cwsp_util.Stats.Acc.create ();
  }

let total_stall_ns t =
  t.stall_pb_ns +. t.stall_rbt_ns +. t.stall_drain_ns +. t.stall_sync_ns
  +. t.stall_wb_ns +. t.stall_wpq_hit_ns +. t.stall_redo_ns

(** Normalized slowdown of this run against a baseline run. *)
let slowdown t ~baseline = t.elapsed_ns /. baseline.elapsed_ns

let wpq_hits_per_minstr t =
  if t.instructions = 0 then 0.0
  else 1_000_000.0 *. float_of_int t.wpq_hits /. float_of_int t.instructions

let avg_region_len t =
  if t.boundaries = 0 then 0.0
  else float_of_int t.instructions /. float_of_int t.boundaries

let to_string t =
  Printf.sprintf
    "time=%.0fns instrs=%d loads=%d stores=%d ckpts=%d regions=%d \
     l1miss=%.1f%% llcmiss=%.1f%% nvm_writes=%d log_writes=%d wpq_hpmi=%.2f \
     stalls[pb=%.0f rbt=%.0f drain=%.0f sync=%.0f wb=%.0f wpqhit=%.0f redo=%.0f] \
     wb_occ=%.2f"
    t.elapsed_ns t.instructions t.loads t.stores t.ckpt_stores t.boundaries
    (100.0 *. t.l1_miss_rate) (100.0 *. t.llc_miss_rate) t.nvm_writes
    t.log_writes (wpq_hits_per_minstr t) t.stall_pb_ns t.stall_rbt_ns
    t.stall_drain_ns t.stall_sync_ns t.stall_wb_ns t.stall_wpq_hit_ns
    t.stall_redo_ns
    (Cwsp_util.Stats.Acc.mean t.wb_occupancy)
