lib/compiler/pipeline.mli: Cwsp_ckpt Cwsp_ir Prog Slice
