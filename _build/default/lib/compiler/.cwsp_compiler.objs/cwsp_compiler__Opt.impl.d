lib/compiler/opt.ml: Array Cwsp_analysis Cwsp_ir Eval Fun List Prog Types
