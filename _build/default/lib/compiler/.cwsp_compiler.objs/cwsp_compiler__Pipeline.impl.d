lib/compiler/pipeline.ml: Array Buffer Cwsp_ckpt Cwsp_idem Cwsp_ir Hashtbl List Opt Option Pass Printf Prog Region_form Slice Types Validate
