lib/compiler/opt.mli: Cwsp_ir Prog
