(** Classic scalar optimizations run before region formation: per-block
    copy propagation and constant folding (including branch folding) plus
    global liveness-based dead-code elimination, iterated to a bounded
    fixpoint. Loads are pure in this IR, so dead loads are removed;
    stores, calls, atomics, fences, checkpoints and boundaries never
    are. *)

open Cwsp_ir

val run_func : Prog.func -> Prog.func
val run : Prog.t -> Prog.t
