lib/core/api.mli: Config Cwsp_compiler Cwsp_interp Cwsp_recovery Cwsp_schemes Cwsp_sim Cwsp_workloads Defs Pipeline Stats Trace
