lib/core/api.ml: Config Cwsp_compiler Cwsp_interp Cwsp_recovery Cwsp_schemes Cwsp_sim Cwsp_workloads Defs Engine Hashtbl Machine Pipeline Stats Trace
