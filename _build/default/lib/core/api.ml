(** The public one-stop API: compile a workload, trace it once, replay the
    trace under any scheme/platform, and compare against the baseline.

    Compiled binaries and traces are memoized per (workload, compile
    config, scale): the trace/timing split from DESIGN.md §5. Timing
    statistics are memoized per (workload, scheme, platform label, scale),
    where the label names the platform variant an experiment runs
    ("default", "l3", "bw-1GB", ...) — platform records themselves are
    not hashed. *)

open Cwsp_interp
open Cwsp_compiler
open Cwsp_sim
open Cwsp_workloads

let compiled_cache : (string * string, Pipeline.compiled) Hashtbl.t =
  Hashtbl.create 64

let trace_cache : (string * string * int, Trace.t) Hashtbl.t = Hashtbl.create 64
let stats_cache : (string * string * string * int, Stats.t) Hashtbl.t =
  Hashtbl.create 256

(** Compile a workload under a compile configuration (memoized). *)
let compiled ?(scale = 1) (w : Defs.t) (cc : Pipeline.config) :
    Pipeline.compiled =
  let key = (w.name ^ "@" ^ string_of_int scale, Pipeline.config_name cc) in
  match Hashtbl.find_opt compiled_cache key with
  | Some c -> c
  | None ->
    let c = Pipeline.compile ~config:cc (w.build ~scale) in
    Hashtbl.add compiled_cache key c;
    c

(** Functional commit trace of a workload under a compile configuration
    (memoized). *)
let trace ?(scale = 1) (w : Defs.t) (cc : Pipeline.config) : Trace.t =
  let key = (w.name, Pipeline.config_name cc, scale) in
  match Hashtbl.find_opt trace_cache key with
  | Some t -> t
  | None ->
    let c = compiled ~scale w cc in
    let _, t = Machine.trace_of_program c.prog in
    Hashtbl.add trace_cache key t;
    t

(** Timing statistics of a workload under a scheme on a platform.
    [label] must uniquely identify [cfg] within the experiment space. *)
let stats ?(scale = 1) ?(label = "default") (w : Defs.t)
    (s : Cwsp_schemes.Schemes.t) (cfg : Config.t) : Stats.t =
  let key = (w.name, s.s_name, label, scale) in
  match Hashtbl.find_opt stats_cache key with
  | Some st -> st
  | None ->
    let tr = trace ~scale w s.s_compile in
    let st = Engine.run_trace (s.s_reconfig cfg) s.s_engine tr in
    Hashtbl.add stats_cache key st;
    st

(** Normalized slowdown of [scheme] against the uninstrumented baseline on
    the *same* platform (the baseline never gets the scheme's platform
    restriction — e.g. ideal PSP is normalized against the DRAM-cache
    baseline, as in Fig. 18). *)
let slowdown ?(scale = 1) ?(label = "default") (w : Defs.t)
    ~(scheme : Cwsp_schemes.Schemes.t) (cfg : Config.t) : float =
  let base = stats ~scale ~label w Cwsp_schemes.Schemes.baseline cfg in
  let st = stats ~scale ~label w scheme cfg in
  Stats.slowdown st ~baseline:base

(** Clear all memoized state (used by tests that tweak workload scale). *)
let reset_caches () =
  Hashtbl.reset compiled_cache;
  Hashtbl.reset trace_cache;
  Hashtbl.reset stats_cache

(** End-to-end crash-consistency validation of a workload (compile with
    the full cWSP pipeline, inject a power failure, recover, compare NVM
    states). *)
let validate_recovery ?(scale = 1) ~seed ~crash_at (w : Defs.t) =
  Cwsp_recovery.Harness.validate ~seed ~crash_at (compiled ~scale w Pipeline.cwsp)
