(** Multi-core power-failure injection and recovery (Section VIII,
    "Recovery for Multi-Cores"): a global region-id counter, global
    per-MC undo-log arrays, per-thread snapshots and per-thread
    *independent* recovery. A thread's recovery point never crosses one
    of its committed synchronization points — the drain-at-sync
    semantics, plus a post-sync resume snapshot, make a committed atomic
    irrevocable (otherwise another thread that already observed it could
    be left inconsistent; see DESIGN.md §5a). *)

open Cwsp_interp

type tracked

val create :
  ?window:int ->
  Cwsp_compiler.Pipeline.compiled ->
  threads:int ->
  worker:string ->
  tracked

(** Per-thread instrumentation hooks. *)
val hooks : tracked -> int -> Machine.hooks

(** Run round-robin for roughly [steps] more total instructions; [true]
    when every thread halted. *)
val run_until : tracked -> int -> bool

(** Cut power on the whole machine and recover every thread
    independently; returns the resumed execution. *)
val crash_and_recover : ?n_mcs:int -> Cwsp_util.Rng.t -> tracked -> Multi.t

(** Full experiment for schedule-deterministic DRF workloads: compare the
    final program-visible NVM state of a crashed-and-recovered run with a
    failure-free run (the checkpoint area is excluded — re-execution
    under a different interleaving is entitled to a different checkpoint
    history). *)
val validate :
  ?window:int ->
  ?n_mcs:int ->
  seed:int ->
  crash_at:int ->
  Cwsp_compiler.Pipeline.compiled ->
  threads:int ->
  worker:string ->
  (unit, string) result
