lib/recovery/io_buffer.mli:
