lib/recovery/harness_mp.ml: Array Cwsp_ckpt Cwsp_compiler Cwsp_interp Cwsp_util Event Hashtbl Layout List Machine Mc_logs Memory Multi Printf
