lib/recovery/harness.ml: Array Cwsp_ckpt Cwsp_compiler Cwsp_interp Cwsp_util Event Hashtbl Io_buffer Layout List Machine Mc_logs Memory Printf
