lib/recovery/io_buffer.ml:
