lib/recovery/harness.mli: Cwsp_compiler Cwsp_interp Cwsp_util Machine
