lib/recovery/mc_logs.ml: Array Hashtbl List Option
