lib/recovery/harness_mp.mli: Cwsp_compiler Cwsp_interp Cwsp_util Machine Multi
