lib/recovery/mc_logs.mli:
