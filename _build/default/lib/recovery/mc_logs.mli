(** Hardware undo logging at the memory controllers (Section V-B2):
    append-only, per-region log arrays kept in each MC's local NVM.
    Append-only eliminates the Fig. 10(c) overwriting hazard; per-region
    arrays make deallocation a Region-ID-indexed reclaim with no search
    cost. *)

type entry = { e_addr : int; e_old : int }

type t

val create : n_mcs:int -> t

(** The MC an address belongs to (256-byte channel interleave). *)
val mc_of : t -> int -> int

(** A store of [region] arrived at its MC: undo-log the old value. *)
val log : t -> region:int -> addr:int -> old:int -> unit

(** The region became non-speculative: every MC reclaims its array. *)
val deallocate : t -> region:int -> unit

(** Entries of one region across all MCs, newest first per MC (program
    order per location is preserved — a location maps to one MC). *)
val region_entries : t -> region:int -> entry list

(** Power failure: revert every logged region strictly newer than
    [oldest_unpersisted], in reverse chronological Region-ID order, then
    drop all logs. [apply] receives (address, old value). *)
val revert_speculative :
  t -> oldest_unpersisted:int -> apply:(int -> int -> unit) -> unit

(** Revert exactly the regions for which [should_revert] holds, in
    reverse chronological Region-ID order, removing their logs — the
    multi-core variant where each thread contributes its own
    unpersisted-region set (Section VIII). *)
val revert_where :
  t -> should_revert:(int -> bool) -> apply:(int -> int -> unit) -> unit

(** Live (not yet deallocated) entries — bounded in hardware by the RBT
    size times the handful of stores per region. *)
val live_entries : t -> int
