(** Region-buffered I/O (the paper's Section VIII "I/O and Device States"
    proposal, implemented).

    Irrevocable operations cannot be re-executed, so cWSP suggests
    battery-backed redo buffers indexed by region id: a region's I/O is
    held in its buffer while the region is speculative and released to
    the device only once the region is *persisted* — giving exactly-once
    device effects across power failure, because

    - a power failure before release discards the buffered I/O, and the
      re-executed region regenerates it;
    - a power failure after release finds the region persisted, so it is
      never re-executed.

    Here the "device" is the interpreter's [__out] stream. The recovery
    harness tracks, per tracked region, the outputs produced inside it;
    [released t ~oldest_unpersisted] is the device-visible prefix at a
    crash, and the harness checks that prefix plus the recovered run's
    output equals the failure-free output — the exactly-once property. *)

type t = {
  mutable per_region : (int * int) list;
    (* (region_index, outputs produced by the end of that region),
       newest first; counts are cumulative *)
}

let create () = { per_region = [ (0, 0) ] }

(** Record that [total_outputs] had been produced when region
    [region_index] began. *)
let on_region_start t ~region_index ~total_outputs =
  t.per_region <- (region_index, total_outputs) :: t.per_region

(** Number of outputs already released to the device when the oldest
    unpersisted region is [region_index]: everything buffered by regions
    that persisted before it. *)
let released t ~oldest_unpersisted =
  let rec find = function
    | [] -> 0
    | (r, n) :: rest -> if r <= oldest_unpersisted then n else find rest
  in
  find t.per_region
