(** Region-buffered I/O (the paper's Section VIII proposal, implemented):
    a region's device output is held in a battery-backed redo buffer
    while the region is speculative and released only once the region
    persists — exactly-once device effects across power failure. *)

type t

val create : unit -> t

(** Record that [total_outputs] had been produced when region
    [region_index] began. *)
val on_region_start : t -> region_index:int -> total_outputs:int -> unit

(** Outputs already released to the device when the oldest unpersisted
    region is [oldest_unpersisted]. *)
val released : t -> oldest_unpersisted:int -> int
