(** Power-failure injection and the cWSP recovery protocol (Section VII) —
    the validation the paper explicitly leaves as future work ("No Power
    Failure Recovery Test", Section VIII).

    The harness executes a compiled program while maintaining exactly the
    state the cWSP hardware keeps:

    - per-region undo logs at the memory controllers (here: (addr, old)
      pairs tagged with the dynamic region index);
    - the register checkpoints, which are ordinary stores to the NVM
      checkpoint area made by the program itself;
    - the recovery-slice table produced by the compiler.

    At a random instruction it "cuts power": it picks the oldest
    unpersisted region R_o within the RBT window, reverts all speculative
    NVM updates of younger regions with the undo logs, un-persists a
    random per-MC FIFO prefix-complement of R_o's own stores (stores to
    the same location always target the same MC, so per-location
    visibility is a prefix — matching real persist-path FIFOs), reverts
    R_o's checkpoint-area stores, and then runs the recovery protocol:
    evaluate R_o's recovery slice to restore its live-in registers
    (every other register is poisoned to catch liveness bugs) and resume
    execution from R_o's entry. Crash consistency holds iff the final NVM
    state equals a failure-free run's.

    Call frames *below* the recovery point are restored from the boundary
    snapshot: they model the NVM-resident stack (spilled registers and
    return addresses live in ordinary persistent memory on a real
    machine; our IR keeps them in interpreter frames). *)

open Cwsp_interp

let poison = 0x5F5F5F5F

type region_record = {
  region_index : int;
  static_id : int;       (* global boundary id that opened this region;
                            -1 for region 0 (program start); -2 for the
                            resume point of a post-recovery execution *)
  frames : Machine.frame list; (* snapshot at region entry *)
  depth : int;
  outputs_at_entry : int;
    (* device outputs produced before this region started: the I/O
       released once every earlier region persisted ([Io_buffer]) *)
  mutable has_sync : bool;
    (* an atomic committed inside this region. Sync primitives persist
       synchronously with their trailing checkpoints as one
       failure-atomic unit (the MC's failure-atomic logging, Fig. 10b):
       crash-wise the unit is all-or-nothing *)
}

type tracked = {
  machine : Machine.t;
  compiled : Cwsp_compiler.Pipeline.compiled;
  window : int; (* RBT size: max concurrently-unpersisted regions *)
  io : Io_buffer.t;  (* region-buffered device I/O (Section VIII) *)
  logs : Mc_logs.t;  (* per-MC per-region undo-log arrays (Section V-B2) *)
  mutable regions : region_record list; (* newest first, length <= window+1 *)
  mutable region_count : int;
  mutable sync_floor : int;
    (* highest *closed* region that contained a sync primitive: stores
       prior to a committed atomic are persisted before it commits
       (Section VIII), so the recovery point can never move at or before
       such a region *)
}

let copy_frame (fr : Machine.frame) = { fr with regs = Array.copy fr.regs }

let make_tracked ~window ~compiled ~machine ~region0 =
  let t =
    {
      machine;
      compiled;
      window;
      io = Io_buffer.create ();
      logs = Mc_logs.create ~n_mcs:2;
      regions = [];
      region_count = 0;
      sync_floor = -1;
    }
  in
  t.regions <- [ region0 ];
  t

let create ?(window = 16) (compiled : Cwsp_compiler.Pipeline.compiled) =
  let linked = Machine.link compiled.prog in
  let machine = Machine.create linked in
  make_tracked ~window ~compiled ~machine
    ~region0:
      { region_index = 0; static_id = -1; frames = []; depth = 0;
        outputs_at_entry = 0; has_sync = false }

(** Track a machine that is itself resuming after a recovery: crashes
    before its first boundary roll back to the resume point (whose
    registers the previous recovery already restored), not to program
    start. Enables crash-during-recovery validation. *)
let create_resumed ?(window = 16) (compiled : Cwsp_compiler.Pipeline.compiled)
    (machine : Machine.t) =
  make_tracked ~window ~compiled ~machine
    ~region0:
      { region_index = 0; static_id = -2;
        frames = List.map copy_frame machine.frames; depth = machine.depth;
        outputs_at_entry = 0; has_sync = false }

let current_region t = List.hd t.regions

let on_boundary t static_id =
  (* closing a region that contained a sync primitive seals it: the drain
     semantics of Section VIII guarantee everything up to and including
     it is persistent *)
  (let cur = current_region t in
   if cur.has_sync then t.sync_floor <- cur.region_index);
  (* regions falling out of the tracking window are treated as persisted
     (non-speculative): the MCs reclaim their log arrays, exactly the
     hardware's deallocation protocol *)
  let rec trim n = function
    | [] -> []
    | x :: rest ->
      if n = 0 then begin
        List.iter
          (fun (r : region_record) ->
            Mc_logs.deallocate t.logs ~region:r.region_index)
          (x :: rest);
        []
      end
      else x :: trim (n - 1) rest
  in
  t.region_count <- t.region_count + 1;
  Io_buffer.on_region_start t.io ~region_index:t.region_count
    ~total_outputs:(List.length t.machine.outputs);
  let snapshot = List.map copy_frame t.machine.frames in
  t.regions <-
    {
      region_index = t.region_count;
      static_id;
      frames = snapshot;
      depth = t.machine.depth;
      outputs_at_entry = List.length t.machine.outputs;
      has_sync = false;
    }
    :: trim t.window t.regions

let hooks t : Machine.hooks =
  {
    on_event =
      (fun ev ->
        let tag = Event.tag ev in
        if tag = Event.tag_boundary then on_boundary t (Event.payload ev)
        else if tag = Event.tag_atomic then (current_region t).has_sync <- true);
    on_store =
      (fun ~addr ~old ~value:_ ->
        (* every speculative store is undo-logged on arrival at its MC *)
        Mc_logs.log t.logs ~region:(current_region t).region_index ~addr ~old);
  }

(** Run for [steps] instructions (or to completion). Returns [true] if the
    program halted before the budget. *)
let run_until t steps =
  let h = hooks t in
  let target = t.machine.steps + steps in
  while t.machine.status = Machine.Running && t.machine.steps < target do
    Machine.step t.machine h
  done;
  t.machine.status = Machine.Halted

(* ---- crash-state construction ---- *)

let revert_ckpt_stores mem entries =
  List.iter
    (fun (e : Mc_logs.entry) ->
      if Layout.is_ckpt_addr e.e_addr then Memory.write mem e.e_addr e.e_old)
    entries

(* Un-persist a random per-MC suffix of the oldest unpersisted region's
   data stores. Entries come newest-first per MC, so a per-MC *suffix*
   in program order is a per-MC *prefix* of the reversed lists. *)
let revert_partial rng mem (entries : Mc_logs.entry list) ~n_mcs =
  let mc_of addr = (addr lsr 8) mod n_mcs in
  (* how many of each MC's stores persisted (in program order) *)
  let per_mc_total = Array.make n_mcs 0 in
  List.iter
    (fun (e : Mc_logs.entry) ->
      if not (Layout.is_ckpt_addr e.e_addr) then
        per_mc_total.(mc_of e.e_addr) <- per_mc_total.(mc_of e.e_addr) + 1)
    entries;
  let persisted_prefix =
    Array.map (fun n -> if n = 0 then 0 else Cwsp_util.Rng.int rng (n + 1)) per_mc_total
  in
  let seen_from_end = Array.make n_mcs 0 in
  List.iter
    (fun (e : Mc_logs.entry) ->
      if not (Layout.is_ckpt_addr e.e_addr) then begin
        let mc = mc_of e.e_addr in
        let pos_from_start = per_mc_total.(mc) - seen_from_end.(mc) in
        seen_from_end.(mc) <- seen_from_end.(mc) + 1;
        if pos_from_start > persisted_prefix.(mc) then
          Memory.write mem e.e_addr e.e_old
      end)
    entries

type crash_report = {
  crash_step : int;
  recovery_region : int;      (* dynamic index of the oldest unpersisted region *)
  reverted_regions : int;
  reexecuted_instructions : int; (* instructions between recovery point and crash *)
  restored_registers : int;
  released_outputs : int list;
    (* device I/O already released at the crash (Section VIII: the redo
       buffers of persisted regions were flushed); oldest first *)
}

(** Cut power now, build the surviving NVM state, run the recovery
    protocol, and return a machine resumed at the recovery point plus a
    report. [rng] drives which regions/stores are treated as persisted. *)
let crash_and_recover ?(n_mcs = 2) rng (t : tracked) :
    Machine.t * crash_report =
  let crash_step = t.machine.steps in
  let mem = Memory.snapshot t.machine.mem in
  (* choose the oldest unpersisted region within the window; never at or
     before a closed sync region (its commit drained everything older) *)
  let eligible =
    List.length
      (List.filter
         (fun (r : region_record) -> r.region_index > t.sync_floor)
         t.regions)
  in
  let avail = max 1 eligible in
  let back = Cwsp_util.Rng.int rng (min avail t.window) in
  (* regions list is newest first: element [back] is R_o *)
  let younger = List.filteri (fun i _ -> i < back) t.regions in
  let r_o = List.nth t.regions back in
  let r_o_entries = Mc_logs.region_entries t.logs ~region:r_o.region_index in
  (* 1. revert speculative NVM updates of younger regions: the MCs replay
     their per-region log arrays in reverse chronological order *)
  Mc_logs.revert_speculative t.logs ~oldest_unpersisted:r_o.region_index
    ~apply:(fun addr old -> Memory.write mem addr old);
  (* 2. un-persist R_o's own stores: a random per-MC FIFO suffix for
     ordinary regions; everything for a still-open sync region (the
     atomic + trailing checkpoints are one failure-atomic unit that did
     not complete) *)
  if r_o.has_sync then
    List.iter
      (fun (e : Mc_logs.entry) -> Memory.write mem e.e_addr e.e_old)
      r_o_entries
  else revert_partial rng mem r_o_entries ~n_mcs;
  (* 3. checkpoint-area stores of unpersisted regions are reverted too:
     the recovery slice must see the slots as of R_o's entry *)
  revert_ckpt_stores mem r_o_entries;
  let linked = t.machine.linked in
  (* I/O of persisted regions was released to the device; the rest was
     still buffered and is discarded with the crash *)
  let released_outputs =
    let n = Io_buffer.released t.io ~oldest_unpersisted:r_o.region_index in
    assert (n = r_o.outputs_at_entry);
    let all = List.rev t.machine.outputs in
    List.filteri (fun i _ -> i < n) all
  in
  if r_o.static_id = -2 then begin
    (* crash before the first boundary of a post-recovery execution:
       roll back to the resume point (registers were restored by the
       previous recovery and live in the snapshot) *)
    let m =
      Machine.resume linked ~mem
        ~frames:(`Frames (List.map copy_frame r_o.frames))
        ~depth:r_o.depth
    in
    ( m,
      {
        crash_step;
        recovery_region = 0;
        reverted_regions = List.length younger;
        reexecuted_instructions = crash_step;
        restored_registers = 0;
        released_outputs;
      } )
  end
  else if r_o.static_id < 0 then begin
    (* crash before the first boundary: restart the program from scratch
       on the surviving memory *)
    let m = Machine.resume linked ~mem ~frames:`Fresh ~depth:0 in
    ( m,
      {
        crash_step;
        recovery_region = 0;
        reverted_regions = List.length younger;
        reexecuted_instructions = crash_step;
        restored_registers = 0;
        released_outputs;
      } )
  end
  else begin
    (* 4. recovery slice: restore R_o's live-in registers *)
    let slice = t.compiled.slices.(r_o.static_id) in
    let frames = List.map copy_frame r_o.frames in
    let fr = List.hd frames in
    Array.fill fr.regs 0 (Array.length fr.regs) poison;
    let slot r2 = Memory.read mem (Layout.ckpt_slot ~tid:0 ~depth:r_o.depth r2) in
    let addr_of g =
      match Hashtbl.find_opt linked.global_addr g with
      | Some a -> a
      | None -> failwith ("recovery slice references unknown global " ^ g)
    in
    List.iter
      (fun (r, expr) -> fr.regs.(r) <- Cwsp_ckpt.Slice.eval ~slot ~addr_of expr)
      slice;
    let m = Machine.resume linked ~mem ~frames:(`Frames frames) ~depth:r_o.depth in
    ( m,
      {
        crash_step;
        recovery_region = r_o.region_index;
        reverted_regions = List.length younger;
        reexecuted_instructions = crash_step - 0;
        restored_registers = List.length slice;
        released_outputs;
      } )
  end

(** Full experiment: run [compiled] to completion twice — once undisturbed
    (golden) and once with a power failure at [crash_at] instructions —
    and compare the final NVM states. Returns [Ok report] on bitwise
    equality. *)
let validate ?(window = 16) ?(n_mcs = 2) ~seed ~crash_at
    (compiled : Cwsp_compiler.Pipeline.compiled) :
    (crash_report, string) result =
  let rng = Cwsp_util.Rng.create seed in
  (* golden run *)
  let golden = Machine.create (Machine.link compiled.prog) in
  Machine.run golden Machine.no_hooks;
  (* crashing run *)
  let t = create ~window compiled in
  let halted = run_until t crash_at in
  if halted then Error "program halted before the crash point"
  else begin
    let recovered, report = crash_and_recover ~n_mcs rng t in
    Machine.run recovered Machine.no_hooks;
    let io_ok =
      (* exactly-once device I/O (Section VIII): released prefix plus the
         recovered run's output must equal the failure-free output *)
      report.released_outputs @ Machine.outputs recovered
      = Machine.outputs golden
    in
    if not io_ok then
      Error
        (Printf.sprintf
           "device I/O diverged after recovery (crash@%d, region %d): %d             released + %d regenerated vs %d golden"
           report.crash_step report.recovery_region
           (List.length report.released_outputs)
           (List.length (Machine.outputs recovered))
           (List.length (Machine.outputs golden)))
    else if Memory.equal golden.mem recovered.mem then Ok report
    else
      match Memory.first_diff golden.mem recovered.mem with
      | Some (addr, g, r) ->
        Error
          (Printf.sprintf
             "NVM mismatch after recovery at 0x%x: golden=%d recovered=%d \
              (crash@%d, region %d)"
             addr g r report.crash_step report.recovery_region)
      | None -> Error "memories differ but no diff found"
  end

(** Multi-failure validation: run to [c], crash, recover, resume, crash
    again at the next point of [crash_points] — recovery itself must be
    crash consistent. Compares the final NVM state and the exactly-once
    I/O stream against a failure-free run. *)
let validate_chain ?(window = 16) ?(n_mcs = 2) ~seed ~crash_points
    (compiled : Cwsp_compiler.Pipeline.compiled) :
    (int, string) result =
  let rng = Cwsp_util.Rng.create seed in
  let golden = Machine.create (Machine.link compiled.prog) in
  Machine.run golden Machine.no_hooks;
  let rec go tracked crash_points released_acc crashes =
    let t = tracked in
    match crash_points with
    | [] ->
      (* no more failures: run to completion through the harness hooks *)
      let h = hooks t in
      while t.machine.status = Machine.Running do
        Machine.step t.machine h
      done;
      let final_io = released_acc @ Machine.outputs t.machine in
      if final_io <> Machine.outputs golden then
        Error
          (Printf.sprintf "device I/O diverged after %d crashes" crashes)
      else if Memory.equal golden.mem t.machine.mem then Ok crashes
      else (
        match Memory.first_diff golden.mem t.machine.mem with
        | Some (addr, g, r) ->
          Error
            (Printf.sprintf
               "NVM mismatch after %d crashes at 0x%x: golden=%d got=%d"
               crashes addr g r)
        | None -> Error "memories differ but no diff found")
    | c :: rest ->
      if run_until t c then
        (* halted before this crash point: just check the final state *)
        go t [] released_acc crashes
      else begin
        let recovered, report = crash_and_recover ~n_mcs rng t in
        let t' = create_resumed ~window t.compiled recovered in
        go t' rest (released_acc @ report.released_outputs) (crashes + 1)
      end
  in
  go (create ~window compiled) crash_points [] 0
