(** Hardware undo logging at the memory controllers (Section V-B2).

    Each MC keeps the logs of stores arriving at it in its own local NVM
    space — no centralized logging, no inter-MC communication — managed
    as *append-only, per-region log arrays*:

    - append-only eliminates the Fig. 10(c) overwriting hazard: when two
      speculative regions store to the same address, both (address, old
      value) pairs survive, and reverse-chronological replay restores the
      value the oldest unpersisted region must observe;
    - per-region arrays make deallocation free of search cost: when a
      region turns non-speculative, its Region ID indexes the arrays to
      reclaim (the RBT head's MCBitVec tells which MCs to signal).

    The recovery harness drives this module exactly as the paper's
    recovery runtime drives the hardware: log on store arrival,
    deallocate on non-speculative transitions, and on power failure
    revert each MC's logs in reverse chronological region order. *)

type entry = { e_addr : int; e_old : int }

type t = {
  n_mcs : int;
  (* per MC: region id -> reversed entry list (newest first) *)
  arrays : (int, entry list) Hashtbl.t array;
  mutable logged_entries : int; (* lifetime counter, for stats *)
}

let create ~n_mcs =
  {
    n_mcs;
    arrays = Array.init n_mcs (fun _ -> Hashtbl.create 64);
    logged_entries = 0;
  }

let mc_of t addr = (addr lsr 8) mod t.n_mcs

(** A store of region [region] arrived at its MC: undo-log it. *)
let log t ~region ~addr ~old =
  let tbl = t.arrays.(mc_of t addr) in
  let cur = Option.value ~default:[] (Hashtbl.find_opt tbl region) in
  Hashtbl.replace tbl region ({ e_addr = addr; e_old = old } :: cur);
  t.logged_entries <- t.logged_entries + 1

(** The region became non-speculative: its own logs are no longer needed
    for recovery and every MC reclaims the region's array. *)
let deallocate t ~region =
  Array.iter (fun tbl -> Hashtbl.remove tbl region) t.arrays

(** Entries of one region across all MCs, newest first (program order is
    preserved per location because a location always maps to one MC). *)
let region_entries t ~region =
  Array.to_list t.arrays
  |> List.concat_map (fun tbl ->
         Option.value ~default:[] (Hashtbl.find_opt tbl region))

(** Power failure: revert every logged region newer than (and NOT
    including) [oldest_unpersisted], processing regions in reverse
    chronological order of Region ID as the paper's recovery runtime
    does, then drop all logs. [apply] receives (addr, old value). *)
let revert_speculative t ~oldest_unpersisted ~apply =
  let regions =
    Array.to_list t.arrays
    |> List.concat_map (fun tbl -> Hashtbl.fold (fun r _ acc -> r :: acc) tbl [])
    |> List.sort_uniq compare |> List.rev
  in
  List.iter
    (fun r ->
      if r > oldest_unpersisted then
        List.iter (fun e -> apply e.e_addr e.e_old) (region_entries t ~region:r))
    regions;
  Array.iter Hashtbl.reset t.arrays

(** Revert (reverse chronological region order) exactly the regions for
    which [should_revert] holds, then remove their logs — the multi-core
    variant where each thread contributes its own unpersisted-region set
    (Section VIII). *)
let revert_where t ~should_revert ~apply =
  let regions =
    Array.to_list t.arrays
    |> List.concat_map (fun tbl -> Hashtbl.fold (fun r _ acc -> r :: acc) tbl [])
    |> List.sort_uniq compare |> List.rev
  in
  List.iter
    (fun r ->
      if should_revert r then begin
        List.iter (fun e -> apply e.e_addr e.e_old) (region_entries t ~region:r);
        deallocate t ~region:r
      end)
    regions

(** Live (not yet deallocated) entries — bounded in hardware because each
    region holds only a handful of stores and the number of concurrently
    speculative regions is capped by the RBT size (Section V-B2). *)
let live_entries t =
  Array.fold_left
    (fun acc tbl -> Hashtbl.fold (fun _ es acc -> acc + List.length es) tbl acc)
    0 t.arrays
