lib/runtime/libc.ml: Builder Cwsp_interp Cwsp_ir
