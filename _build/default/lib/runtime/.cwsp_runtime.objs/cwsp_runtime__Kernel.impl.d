lib/runtime/kernel.ml: Asm Builder Cwsp_ir Types
