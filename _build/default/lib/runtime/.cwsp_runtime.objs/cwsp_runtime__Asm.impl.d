lib/runtime/asm.ml: Array Builder Cwsp_ir Hashtbl List Types
