(** A miniature x86-64-flavoured assembly language and its lifter to the
    IR — the paper's alternative to hand-annotating assembly files:
    "It is also feasible to lift assembly code up to LLVM bitcode using
    mature lifting tools, e.g., Remill, in which case cWSP compiler
    optimizations can be automatically applied along with the recoverable
    region formation" (Section IV-D).

    [Lift.func] turns an assembly routine into an ordinary IR function:
    machine registers become virtual registers, the calling convention
    (arguments in RDI/RSI/RDX, result in RAX) becomes IR call/return
    plumbing, and push/pop become stores/loads against a stack pointer
    into a named stack global. The result then flows through the normal
    pipeline — region formation, checkpointing, pruning — with no manual
    boundaries at all; [test_runtime.ml] checks the lifted syscall stub
    behaves exactly like the hand-written one and recovers from injected
    power failures. *)

open Cwsp_ir

type mreg =
  | RAX | RBX | RCX | RDX | RSI | RDI | RBP | RSP
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15

type src = R of mreg | I of int

type instr =
  | Label of string
  | Mov of mreg * src
  | Lea of mreg * string            (* lea dst, [global] *)
  | Op of Types.binop * mreg * src  (* dst <- dst op src *)
  | Cmp of Types.cmpop * mreg * mreg * src (* dst <- (a cmp b) *)
  | Load of mreg * mreg * int       (* mov dst, [base+off] *)
  | Store of mreg * int * src       (* mov [base+off], src *)
  | Push of mreg
  | Pop of mreg
  | Call of string                  (* args per convention, result in RAX *)
  | LockOp of Types.binop * mreg * int * src (* lock rmw [base+off]; old -> RAX *)
  | Mfence
  | Jmp of string
  | Jz of mreg * string             (* jump if register is zero *)
  | Ret                             (* returns RAX *)

type routine = {
  rname : string;
  nargs : int;           (* <= 3, passed in RDI, RSI, RDX *)
  stack_global : string; (* backing storage for push/pop *)
  stack_bytes : int;
  body : instr list;
}

(** Arity of callees, so calls can be rebuilt with explicit arguments. *)
type abi = (string * int) list

module Lift = struct
  open Cwsp_ir

  let mreg_index = function
    | RAX -> 0 | RBX -> 1 | RCX -> 2 | RDX -> 3 | RSI -> 4 | RDI -> 5
    | RBP -> 6 | RSP -> 7 | R8 -> 8 | R9 -> 9 | R10 -> 10 | R11 -> 11
    | R12 -> 12 | R13 -> 13 | R14 -> 14 | R15 -> 15

  let arg_regs = [ RDI; RSI; RDX ]

  (** Lift one routine to an IR function builder action. The function
      takes [r.nargs] parameters; machine registers live in virtual
      registers [nargs ..], the stack pointer starts at the top of the
      routine's stack global. *)
  let func (abi : abi) (r : routine) (b : Builder.t) : unit =
    if r.nargs > 3 then invalid_arg "Asm.Lift: at most 3 arguments";
    Builder.func b r.rname ~nparams:r.nargs (fun fb ->
        let open Builder in
        (* machine register file *)
        let m = Array.init 16 (fun _ -> fresh fb) in
        let reg mr = m.(mreg_index mr) in
        let value = function R mr -> Types.Reg (reg mr) | I v -> Types.Imm v in
        (* prologue: zero registers, place arguments, aim RSP at the top
           of the stack global *)
        Array.iter (fun vr -> emit fb (Types.Mov (vr, Imm 0))) m;
        List.iteri
          (fun i mr -> if i < r.nargs then emit fb (Types.Mov (reg mr, Reg (param fb i))))
          arg_regs;
        let stack_base = la fb r.stack_global in
        emit fb
          (Types.Bin (Add, reg RSP, Reg stack_base, Imm r.stack_bytes));
        (* pass 1: labels -> fresh blocks *)
        let blocks = Hashtbl.create 8 in
        List.iter
          (fun ins ->
            match ins with
            | Label l ->
              if Hashtbl.mem blocks l then
                invalid_arg ("Asm.Lift: duplicate label " ^ l);
              Hashtbl.replace blocks l (block fb)
            | _ -> ())
          r.body;
        let target l =
          match Hashtbl.find_opt blocks l with
          | Some bl -> bl
          | None -> invalid_arg ("Asm.Lift: unknown label " ^ l)
        in
        (* pass 2: translate; falling into a label needs an explicit jmp
           because IR blocks are explicitly terminated *)
        let terminated = ref false in
        List.iter
          (fun ins ->
            match ins with
            | Label l ->
              if not !terminated then jmp fb (target l);
              switch_to fb (target l);
              terminated := false
            | _ when !terminated ->
              invalid_arg "Asm.Lift: unreachable instruction after jump/ret"
            | Mov (d, s) -> emit fb (Types.Mov (reg d, value s))
            | Lea (d, g) -> emit fb (Types.La (reg d, g))
            | Op (op, d, s) -> emit fb (Types.Bin (op, reg d, Reg (reg d), value s))
            | Cmp (op, d, a, s) ->
              emit fb (Types.Cmp (op, reg d, Reg (reg a), value s))
            | Load (d, base, off) -> emit fb (Types.Load (reg d, reg base, off))
            | Store (base, off, s) -> emit fb (Types.Store (reg base, off, value s))
            | Push mr ->
              emit fb (Types.Bin (Sub, reg RSP, Reg (reg RSP), Imm 8));
              emit fb (Types.Store (reg RSP, 0, Reg (reg mr)))
            | Pop mr ->
              emit fb (Types.Load (reg mr, reg RSP, 0));
              emit fb (Types.Bin (Add, reg RSP, Reg (reg RSP), Imm 8))
            | Call callee ->
              let arity =
                match List.assoc_opt callee abi with
                | Some n -> n
                | None -> invalid_arg ("Asm.Lift: callee not in ABI: " ^ callee)
              in
              let args =
                List.filteri (fun i _ -> i < arity) arg_regs
                |> List.map (fun mr -> Types.Reg (reg mr))
              in
              emit fb (Types.Call (callee, args, Some (reg RAX)))
            | LockOp (op, base, off, s) ->
              emit fb (Types.Atomic_rmw (op, reg RAX, reg base, off, value s))
            | Mfence -> emit fb Types.Fence
            | Jmp l ->
              jmp fb (target l);
              terminated := true
            | Jz (mr, l) ->
              let fall = block fb in
              let z = cmp fb Types.Eq (Reg (reg mr)) (Imm 0) in
              br fb z ~ifso:(target l) ~ifnot:fall;
              switch_to fb fall
            | Ret ->
              ret fb (Some (Reg (reg RAX)));
              terminated := true)
          r.body;
        if not !terminated then ret fb (Some (Reg (reg RAX))))
end
