(** The kernel-side substrate: a miniature syscall path modeled after the
    paper's Section VI (crash consistency for system calls).

    [entry_syscall_64] plays the role of the hand-annotated
    [entry_SYSCALL_64] of arch/x86/entry/entry_64.S: it is "assembly" that
    the compiler cannot partition automatically, so region boundaries are
    placed *manually* — at its entry, right before the dispatch call
    (Fig. 11), and at its exit — by emitting explicit [Boundary]
    instructions during construction. The region-formation pass keeps
    pre-existing boundaries and only verifies/augments them, mirroring how
    the paper's manual annotations coexist with compiler-inserted ones.

    The syscall handlers themselves ([sys_read]/[sys_write]/[sys_getpid])
    are ordinary C-like code compiled by the full pipeline. *)

open Cwsp_ir
open Builder

(* Manual boundary ids: the compiler renumbers all boundaries globally, so
   these only need to be unique within the function. *)
let manual_entry = 9000
let manual_dispatch = 9001
let manual_exit = 9002

let kfile_global = "__kfile"        (* backing store for read/write *)
let kfile_words = 512
let kstate_global = "__kstate"      (* word 0: write ptr; word 1: read ptr;
                                       word 2: pid; word 3: syscall count *)
let kstack_global = "__kstack"      (* saved user context *)

let sys_write_no = 1
let sys_read_no = 0
let sys_getpid_no = 39

let add_globals b =
  global b kfile_global ~size:(kfile_words * 8) ();
  global b kstate_global ~size:64 ~init:[ (2, 4242) ] ();
  global b kstack_global ~size:128 ()

(* sys_write(buf, len_words): append words from buf into the kernel file. *)
let add_sys_write b =
  func b "sys_write" ~nparams:2 (fun fb ->
      let buf = param fb 0 and len = param fb 1 in
      let st = la fb kstate_global in
      let file = la fb kfile_global in
      let wp = load fb st 0 in
      let _i =
        loop fb ~from:(Imm 0) ~below:(Reg len) (fun i ->
            let v = load fb (bin fb Add (Reg buf) (Reg (bin fb Shl (Reg i) (Imm 3)))) 0 in
            let slot = bin fb Add (Reg wp) (Reg i) in
            let slot = bin fb Rem (Reg slot) (Imm kfile_words) in
            let addr = bin fb Add (Reg file) (Reg (bin fb Shl (Reg slot) (Imm 3))) in
            store fb addr 0 (Reg v))
      in
      let nwp = bin fb Add (Reg wp) (Reg len) in
      store fb st 0 (Reg nwp);
      ret fb (Some (Reg len)))

(* sys_read(buf, len_words): copy words from the kernel file into buf. *)
let add_sys_read b =
  func b "sys_read" ~nparams:2 (fun fb ->
      let buf = param fb 0 and len = param fb 1 in
      let st = la fb kstate_global in
      let file = la fb kfile_global in
      let rp = load fb st 8 in
      let _i =
        loop fb ~from:(Imm 0) ~below:(Reg len) (fun i ->
            let slot = bin fb Add (Reg rp) (Reg i) in
            let slot = bin fb Rem (Reg slot) (Imm kfile_words) in
            let v = load fb (bin fb Add (Reg file) (Reg (bin fb Shl (Reg slot) (Imm 3)))) 0 in
            let addr = bin fb Add (Reg buf) (Reg (bin fb Shl (Reg i) (Imm 3))) in
            store fb addr 0 (Reg v))
      in
      let nrp = bin fb Add (Reg rp) (Reg len) in
      store fb st 8 (Reg nrp);
      ret fb (Some (Reg len)))

let add_sys_getpid b =
  func b "sys_getpid" ~nparams:0 (fun fb ->
      let st = la fb kstate_global in
      let pid = load fb st 16 in
      ret fb (Some (Reg pid)))

(* do_syscall_64(sysno, a0, a1): the C dispatcher of Fig. 11. *)
let add_do_syscall b =
  func b "do_syscall_64" ~nparams:3 (fun fb ->
      let sysno = param fb 0 and a0 = param fb 1 and a1 = param fb 2 in
      let st = la fb kstate_global in
      let cnt = load fb st 24 in
      store fb st 24 (Reg (bin fb Add (Reg cnt) (Imm 1)));
      let result = fresh fb in
      let is_write = cmp fb Eq (Reg sysno) (Imm sys_write_no) in
      if_ fb is_write
        ~then_:(fun () ->
          let r = call fb "sys_write" [ Reg a0; Reg a1 ] in
          emit fb (Mov (result, Reg r)))
        ~else_:(fun () ->
          let is_read = cmp fb Eq (Reg sysno) (Imm sys_read_no) in
          if_ fb is_read
            ~then_:(fun () ->
              let r = call fb "sys_read" [ Reg a0; Reg a1 ] in
              emit fb (Mov (result, Reg r)))
            ~else_:(fun () ->
              let r = call fb "sys_getpid" [] in
              emit fb (Mov (result, Reg r))));
      ret fb (Some (Reg result)))

(* entry_syscall_64(sysno, a0, a1): the hand-annotated assembly stub. *)
let add_entry b =
  func b "entry_syscall_64" ~nparams:3 (fun fb ->
      let sysno = param fb 0 and a0 = param fb 1 and a1 = param fb 2 in
      (* manual boundary at kernel entry *)
      emit fb (Types.Boundary manual_entry);
      (* save the "user context" to the kernel stack (swapgs/push regs) *)
      let ks = la fb kstack_global in
      store fb ks 0 (Reg sysno);
      store fb ks 8 (Reg a0);
      store fb ks 16 (Reg a1);
      (* manual boundary right before the dispatch call site (Fig. 11) *)
      emit fb (Types.Boundary manual_dispatch);
      let r = call fb "do_syscall_64" [ Reg sysno; Reg a0; Reg a1 ] in
      (* manual boundary at the exit/sysret path *)
      emit fb (Types.Boundary manual_exit);
      let restored = load fb ks 0 in
      (* a touch of real restore work so the exit region is non-trivial *)
      let _ = bin fb Xor (Reg restored) (Reg restored) in
      ret fb (Some (Reg r)))

(* The same syscall entry stub written as raw "assembly" and lifted to IR
   (Section IV-D's Remill alternative to manual annotation): pushes the
   user context onto the kernel stack, dispatches, restores, returns. No
   manual boundaries — the lifted IR goes through the ordinary pipeline,
   which forms its regions automatically. *)
let entry_asm : Asm.routine =
  let open Asm in
  {
    rname = "entry_syscall_64_lifted";
    nargs = 3;
    stack_global = kstack_global;
    stack_bytes = 128;
    body =
      [
        (* save the user context (push regs after swapgs) *)
        Push RDI;
        Push RSI;
        Push RDX;
        (* dispatch: arguments already sit in RDI/RSI/RDX *)
        Call "do_syscall_64";
        Mov (RBX, R RAX);
        (* restore and return *)
        Pop RDX;
        Pop RSI;
        Pop RDI;
        Mov (RAX, R RBX);
        Ret;
      ];
  }

let abi : Asm.abi = [ ("do_syscall_64", 3) ]

(** Add the kernel substrate to a program under construction. *)
let add b =
  add_globals b;
  add_sys_write b;
  add_sys_read b;
  add_sys_getpid b;
  add_do_syscall b;
  add_entry b;
  Asm.Lift.func abi entry_asm b

let function_names =
  [ "sys_write"; "sys_read"; "sys_getpid"; "do_syscall_64"; "entry_syscall_64";
    "entry_syscall_64_lifted" ]
