(** The crash-consistent runtime library — a miniature glibc written in the
    IR (Section IV-D of the paper: cWSP "introduces a comprehensive
    crash-consistent runtime" by recompiling libc with the cWSP compiler).

    Because these functions are ordinary IR, they are partitioned into
    idempotent regions and checkpointed exactly like user code: a power
    failure inside [malloc] recovers like any other region. The allocator
    is a first-fit free list with block splitting over an [sbrk]-grown
    heap, so workloads exercise real pointer-chasing allocator code paths
    rather than a magic intrinsic. *)

open Cwsp_ir
open Builder

let brk_global = "__brk"
let freelist_global = "__free_list"
let lcg_global = "__lcg_state"

(* Heap block layout: [size (bytes, incl. header) | payload...];
   free blocks additionally use payload word 0 as the next-free pointer. *)
let header_bytes = 8

let add_globals b =
  global b brk_global ~size:8 ~init:[ (0, Cwsp_interp.Layout.heap_base) ] ();
  global b freelist_global ~size:8 ();
  global b lcg_global ~size:8 ~init:[ (0, 0x5DEECE66D) ] ()

(* sbrk(n): returns the old break and advances it by n (8-byte rounded). *)
let add_sbrk b =
  func b "sbrk" ~nparams:1 (fun fb ->
      let n = param fb 0 in
      let rounded = bin fb And (Reg (bin fb Add (Reg n) (Imm 7))) (Imm (lnot 7)) in
      let brk = la fb brk_global in
      let old = load fb brk 0 in
      let nw = bin fb Add (Reg old) (Reg rounded) in
      store fb brk 0 (Reg nw);
      ret fb (Some (Reg old)))

(* malloc(n): first-fit over the free list, splitting when the remainder
   can hold a header plus one word; falls back to sbrk. Returns the
   payload address. *)
let add_malloc b =
  func b "malloc" ~nparams:1 (fun fb ->
      let n = param fb 0 in
      let need =
        bin fb Add
          (Reg (bin fb And (Reg (bin fb Add (Reg n) (Imm 7))) (Imm (lnot 7))))
          (Imm header_bytes)
      in
      let flhead = la fb freelist_global in
      (* walk the free list: prev = &head as a location holding next ptr *)
      let prev = fresh fb in
      emit fb (Mov (prev, Reg flhead));
      let cur = fresh fb in
      emit fb (Load (cur, flhead, 0));
      let loop_head = block fb in
      let found_l = block fb in
      let advance_l = block fb in
      let grow_l = block fb in
      let done_l = block fb in
      let result = fresh fb in
      jmp fb loop_head;
      (* loop: cur = 0 -> grow; fits -> found; else advance *)
      switch_to fb loop_head;
      let is_null = cmp fb Eq (Reg cur) (Imm 0) in
      let after_null = block fb in
      br fb is_null ~ifso:grow_l ~ifnot:after_null;
      switch_to fb after_null;
      let size = load fb cur 0 in
      let fits = cmp fb Ge (Reg size) (Reg need) in
      br fb fits ~ifso:found_l ~ifnot:advance_l;
      (* advance: prev = cur + 8 (the next-pointer slot), cur = *next *)
      switch_to fb advance_l;
      emit fb (Bin (Add, prev, Reg cur, Imm header_bytes));
      emit fb (Load (cur, cur, header_bytes));
      jmp fb loop_head;
      (* found: maybe split, unlink, return payload *)
      switch_to fb found_l;
      let nxt = load fb cur header_bytes in
      let rem = bin fb Sub (Reg size) (Reg need) in
      let can_split = cmp fb Ge (Reg rem) (Imm (header_bytes + 8)) in
      if_ fb can_split
        ~then_:(fun () ->
          (* shrink current block; carve the tail as the allocation *)
          store fb cur 0 (Reg rem);
          let alloc = bin fb Add (Reg cur) (Reg rem) in
          store fb alloc 0 (Reg need);
          emit fb (Bin (Add, result, Reg alloc, Imm header_bytes)))
        ~else_:(fun () ->
          (* take the whole block: unlink from the list *)
          store fb prev 0 (Reg nxt);
          emit fb (Bin (Add, result, Reg cur, Imm header_bytes)));
      jmp fb done_l;
      (* grow: sbrk a fresh block *)
      switch_to fb grow_l;
      let blk = call fb "sbrk" [ Reg need ] in
      store fb blk 0 (Reg need);
      emit fb (Bin (Add, result, Reg blk, Imm header_bytes));
      jmp fb done_l;
      switch_to fb done_l;
      ret fb (Some (Reg result)))

(* free(p): push the block onto the free list. *)
let add_free b =
  func b "free" ~nparams:1 (fun fb ->
      let p = param fb 0 in
      let blk = bin fb Sub (Reg p) (Imm header_bytes) in
      let flhead = la fb freelist_global in
      let old = load fb flhead 0 in
      store fb blk header_bytes (Reg old);
      store fb flhead 0 (Reg blk);
      ret fb None)

(* memcpy(dst, src, n): word-granularity copy; n in bytes (8-aligned). *)
let add_memcpy b =
  func b "memcpy" ~nparams:3 (fun fb ->
      let dst = param fb 0 and src = param fb 1 and n = param fb 2 in
      let words = bin fb Lshr (Reg n) (Imm 3) in
      let _i =
        loop fb ~from:(Imm 0) ~below:(Reg words) (fun i ->
            let off = bin fb Shl (Reg i) (Imm 3) in
            let s = bin fb Add (Reg src) (Reg off) in
            let d = bin fb Add (Reg dst) (Reg off) in
            let v = load fb s 0 in
            store fb d 0 (Reg v))
      in
      ret fb (Some (Reg dst)))

(* memset(dst, v, n) *)
let add_memset b =
  func b "memset" ~nparams:3 (fun fb ->
      let dst = param fb 0 and v = param fb 1 and n = param fb 2 in
      let words = bin fb Lshr (Reg n) (Imm 3) in
      let _i =
        loop fb ~from:(Imm 0) ~below:(Reg words) (fun i ->
            let off = bin fb Shl (Reg i) (Imm 3) in
            let d = bin fb Add (Reg dst) (Reg off) in
            store fb d 0 (Reg v))
      in
      ret fb (Some (Reg dst)))

(* lcg_next(): deterministic pseudo-random source for workloads; the LCG
   state lives in NVM like everything else, so each call is a
   load-modify-store region of its own. *)
let add_lcg b =
  func b "lcg_next" ~nparams:0 (fun fb ->
      let st = la fb lcg_global in
      let s = load fb st 0 in
      let s1 = bin fb Mul (Reg s) (Imm 2862933555777941757) in
      let s2 = bin fb Add (Reg s1) (Imm 3037000493) in
      (* keep it positive: clear the sign bit *)
      let s3 = bin fb And (Reg s2) (Imm max_int) in
      store fb st 0 (Reg s3);
      let out = bin fb Lshr (Reg s3) (Imm 11) in
      ret fb (Some (Reg out)))

(* spin_lock(addr): CAS loop until 0 -> 1 succeeds. Progress is
   guaranteed under the deterministic round-robin scheduler of
   [Cwsp_interp.Multi]. The CAS is a sync point, hence a region boundary
   and a persist-drain point (Section VIII). *)
let add_spin_lock b =
  func b "spin_lock" ~nparams:1 (fun fb ->
      let l = param fb 0 in
      let head = block fb in
      let done_l = block fb in
      jmp fb head;
      switch_to fb head;
      let old = cas fb l 0 ~expected:(Imm 0) ~desired:(Imm 1) in
      let got = cmp fb Eq (Reg old) (Imm 0) in
      br fb got ~ifso:done_l ~ifnot:head;
      switch_to fb done_l;
      ret fb None)

(* spin_unlock(addr): an atomic release. A plain store would suffice on
   TSO for visibility, but cWSP's multi-core recovery argument
   (Section VIII) requires the critical section's stores to be persisted
   before the section is exited — the exit must be a synchronization
   point that drains, or a power failure could roll back one thread's
   section while another thread has already entered it. The crash tests
   in test_mp.ml fail with a plain-store release, which is exactly that
   hazard. *)
let add_spin_unlock b =
  func b "spin_unlock" ~nparams:1 (fun fb ->
      let l = param fb 0 in
      let _ = atomic_rmw fb And l 0 (Imm 0) in
      ret fb None)

(** Add the whole runtime to a program under construction. *)
let add b =
  add_globals b;
  add_sbrk b;
  add_malloc b;
  add_free b;
  add_memcpy b;
  add_memset b;
  add_lcg b;
  add_spin_lock b;
  add_spin_unlock b

(** Names of the runtime functions, for reports and tests. *)
let function_names =
  [ "sbrk"; "malloc"; "free"; "memcpy"; "memset"; "lcg_next"; "spin_lock";
    "spin_unlock" ]
