(** SPEC CPU2006 stand-ins (10 applications, Fig. 13 left group).

    Footprints and read/write mixes follow each benchmark's published
    memory character: [lbm]/[libquantum]/[milc] stream arrays larger than
    the LLC SRAM (high L1D miss rate — the paper quotes 22% for 470.lbm),
    [astar] does irregular search over a large map, while
    [gobmk]/[sjeng]/[namd] are compute-bound with small working sets.
    "Large" is relative to the scaled hierarchy in [Cwsp_sim.Config]
    (16KB L1D / 256KB LLC SRAM / 64MB DRAM cache). *)

open Cwsp_ir.Builder
open Defs
open Kernels

let app name ?(mem = false) description build =
  { name; suite = Cpu2006; description; memory_intensive = mem; build }

let astar =
  app "astar" ~mem:true "irregular grid search over a large map"
    (fun ~scale ->
      scaffold
        ~globals:[ g "grid" (mib 2) ]
        ~body:(fun fb ->
          let grid = la fb "grid" in
          let acc =
            random_access fb ~arr:grid ~n_words:(mib 2 / 8)
              ~iters:(5000 * scale) ~write_every:6 ~alu:6 ()
          in
          (* repeated open-list/frontier rescans: the reuse that a DRAM
             cache captures *)
          for _round = 1 to 2 do
            let _ =
              sweep fb ~src:grid ~dst:grid ~n:(8192 * scale) ~stride_words:8
                ~write_every:12 ~alu:3
            in
            ()
          done;
          finish fb ~checksum_g:checksum_global acc)
        ())

let bzip2 =
  app "bzip2" "byte-frequency counting plus table sweeps" (fun ~scale ->
      scaffold
        ~globals:[ g "freq" (kib 32); g "data" (kib 64) ]
        ~body:(fun fb ->
          let freq = la fb "freq" in
          let data = la fb "data" in
          histogram fb ~bins:freq ~n_bins:(kib 32 / 8) ~iters:(3000 * scale) ~alu:6 ();
          let acc =
            sweep fb ~src:data ~dst:data ~n:(kib 64 / 8) ~stride_words:1
              ~write_every:5 ~alu:4
          in
          finish fb ~checksum_g:checksum_global acc)
        ())

let gobmk =
  app "gobmk" "compute-bound board evaluation, small working set"
    (fun ~scale ->
      scaffold
        ~globals:[ g "board" (kib 32) ]
        ~body:(fun fb ->
          let board = la fb "board" in
          let acc = fresh fb in
          emit fb (Cwsp_ir.Types.Mov (acc, Imm 0));
          for _round = 1 to scale do
            let a =
              sweep fb ~src:board ~dst:board ~n:(kib 32 / 8) ~stride_words:1
                ~write_every:24 ~alu:14
            in
            emit fb (Cwsp_ir.Types.Bin (Add, acc, Reg acc, Reg a))
          done;
          finish fb ~checksum_g:checksum_global acc)
        ())

let h264ref =
  app "h264ref" "macroblock copies through library memcpy" (fun ~scale ->
      scaffold
        ~globals:[ g "frame_in" (kib 128); g "frame_out" (kib 128) ]
        ~body:(fun fb ->
          let src = la fb "frame_in" in
          let dst = la fb "frame_out" in
          block_copies fb ~src ~dst ~blocks:(24 * scale) ~block_bytes:1024;
          stencil fb ~src:dst ~dst:src ~n:4096 ~alu:8 ();
          let acc = load fb dst 0 in
          finish fb ~checksum_g:checksum_global acc)
        ())

let lbm =
  app "lbm" ~mem:true "lattice-Boltzmann streaming: large strided sweeps"
    (fun ~scale ->
      scaffold
        ~globals:[ g "lattice" (mib 4) ]
        ~body:(fun fb ->
          let lat = la fb "lattice" in
          (* two rounds over 2MB: round 2 hits the DRAM cache but misses
             the SRAM levels; every access opens a new line (high L1D
             miss rate, as the paper notes for 470.lbm) *)
          for _round = 1 to 2 do
            let _ =
              sweep fb ~src:lat ~dst:lat ~n:(8000 * scale) ~stride_words:64
                ~write_every:2 ~alu:4
            in
            ()
          done;
          let acc = load fb lat 0 in
          finish fb ~checksum_g:checksum_global acc)
        ())

let libquantum =
  app "libquan" ~mem:true "quantum register simulation: streaming updates"
    (fun ~scale ->
      scaffold
        ~globals:[ g "qreg" (mib 1) ]
        ~body:(fun fb ->
          let qreg = la fb "qreg" in
          for _round = 1 to 3 do
            let _ =
              sweep fb ~src:qreg ~dst:qreg ~n:(4000 * scale) ~stride_words:32
                ~write_every:3 ~alu:3
            in
            ()
          done;
          let acc = load fb qreg 64 in
          finish fb ~checksum_g:checksum_global acc)
        ())

let milc =
  app "milc" ~mem:true "lattice QCD: streaming link-field updates"
    (fun ~scale ->
      scaffold
        ~globals:[ g "links" (kib 768); g "field" (kib 16); g "res" (kib 16) ]
        ~body:(fun fb ->
          let links = la fb "links" in
          let field = la fb "field" in
          let res = la fb "res" in
          for _round = 1 to 2 do
            let _ =
              sweep fb ~src:links ~dst:links ~n:(6000 * scale) ~stride_words:16
                ~write_every:4 ~alu:5
            in
            ()
          done;
          matvec fb ~mat:field ~vec:res ~out:res ~rows:16 ~cols:64;
          let acc = load fb res 0 in
          finish fb ~checksum_g:checksum_global acc)
        ())

let namd =
  app "namd" "molecular dynamics: compute-dense small kernels" (fun ~scale ->
      scaffold
        ~globals:[ g "forces" (kib 32) ]
        ~body:(fun fb ->
          let forces = la fb "forces" in
          let acc = fresh fb in
          emit fb (Cwsp_ir.Types.Mov (acc, Imm 0));
          for _round = 1 to scale do
            let a =
              sweep fb ~src:forces ~dst:forces ~n:(kib 32 / 8) ~stride_words:1
                ~write_every:10 ~alu:16
            in
            emit fb (Cwsp_ir.Types.Bin (Add, acc, Reg acc, Reg a))
          done;
          finish fb ~checksum_g:checksum_global acc)
        ())

let sjeng =
  app "sjeng" "game-tree search: transposition-table probes" (fun ~scale ->
      scaffold
        ~globals:[ g "ttable" (kib 64) ]
        ~body:(fun fb ->
          let tt = la fb "ttable" in
          let acc =
            random_access fb ~arr:tt ~n_words:(kib 64 / 8)
              ~iters:(5000 * scale) ~write_every:12 ~alu:9 ()
          in
          finish fb ~checksum_g:checksum_global acc)
        ())

let soplex =
  app "soplex" "simplex solver: sparse row sweeps and pivots" (fun ~scale ->
      scaffold
        ~globals:[ g "tableau" (kib 512); g "pivot" (kib 16) ]
        ~body:(fun fb ->
          let tab = la fb "tableau" in
          let piv = la fb "pivot" in
          let _ =
            sweep fb ~src:tab ~dst:tab ~n:(4000 * scale) ~stride_words:16
              ~write_every:16 ~alu:5
          in
          let acc =
            sweep fb ~src:piv ~dst:piv ~n:(kib 16 / 8) ~stride_words:1
              ~write_every:2 ~alu:3
          in
          finish fb ~checksum_g:checksum_global acc)
        ())

let apps =
  [ astar; bzip2; gobmk; h264ref; lbm; libquantum; milc; namd; sjeng; soplex ]
