(** Workload definitions: the entry type and the shared program scaffold.

    One entry per application evaluated in the paper (Fig. 13 x-axis).
    [build ~scale] produces a whole program: the application's [main] plus
    the runtime library and kernel substrate, so every trace exercises
    user code, libc and the syscall path — the whole-system story. *)

open Cwsp_ir

type suite = Cpu2006 | Cpu2017 | Miniapps | Splash3 | Whisper | Stamp

let suite_name = function
  | Cpu2006 -> "CPU2006"
  | Cpu2017 -> "CPU2017"
  | Miniapps -> "Mini-apps"
  | Splash3 -> "SPLASH3"
  | Whisper -> "WHISPER"
  | Stamp -> "STAMP"

let all_suites = [ Cpu2006; Cpu2017; Miniapps; Splash3; Whisper; Stamp ]

type t = {
  name : string;
  suite : suite;
  description : string;
  memory_intensive : bool;
    (* member of the Fig. 1 / 17 / 18 memory-intensive subset *)
  build : scale:int -> Prog.t;
}

let checksum_global = "checksum"

(** Standard program scaffold: runtime + kernel + a main built by [body].
    [body] must leave the current block unterminated; a final syscall
    writes the checksum through the kernel path and the program returns —
    so even compute-only workloads cross the user/kernel boundary. *)
let scaffold ~globals ~body () : Prog.t =
  let b = Builder.program () in
  Cwsp_runtime.Libc.add b;
  Cwsp_runtime.Kernel.add b;
  Builder.global b checksum_global ~size:64 ();
  List.iter (fun f -> f b) globals;
  Builder.func b "main" ~nparams:0 (fun fb ->
      body fb;
      let open Builder in
      let ck = la fb checksum_global in
      let r =
        call fb "entry_syscall_64"
          [ Imm Cwsp_runtime.Kernel.sys_write_no; Reg ck; Imm 2 ]
      in
      call_void fb "__out" [ Reg r ];
      ret fb None);
  Builder.set_main b "main";
  Builder.finish b

(** Global of [size] bytes. *)
let g name size b = Builder.global b name ~size ()

let kib n = n * 1024
let mib n = n * 1024 * 1024
