(** The assembled workload registry: 38 applications across six suites
    (the paper's Section IX says "37 applications"; its figures list 38
    names — all 38 are implemented; see EXPERIMENTS.md). *)

val all : Defs.t list

val find : string -> Defs.t option

(** Raises [Invalid_argument] on unknown names. *)
val find_exn : string -> Defs.t

val by_suite : Defs.suite -> Defs.t list

(** The Fig. 1 / 17 / 18 memory-intensive subset. *)
val memory_intensive : Defs.t list

val names : string list
