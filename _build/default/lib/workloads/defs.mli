(** Workload definitions: the registry entry type and the shared program
    scaffold (runtime + kernel + a generated [main] that finishes by
    pushing its checksum through the syscall path — every workload
    crosses the user/kernel boundary). *)

open Cwsp_ir

type suite = Cpu2006 | Cpu2017 | Miniapps | Splash3 | Whisper | Stamp

val suite_name : suite -> string
val all_suites : suite list

type t = {
  name : string;
  suite : suite;
  description : string;
  memory_intensive : bool; (** member of the Fig. 1/17/18 subset *)
  build : scale:int -> Prog.t;
}

val checksum_global : string

(** Build a whole program around [body] (which must leave its final block
    unterminated). *)
val scaffold :
  globals:(Builder.t -> unit) list ->
  body:(Builder.fb -> unit) ->
  unit ->
  Prog.t

(** Declare a plain global of [size] bytes. *)
val g : string -> int -> Builder.t -> unit

val kib : int -> int
val mib : int -> int
