(** The assembled workload registry: 38 applications across six suites
    (the paper's Section IX counts "37 applications"; its figures list 38
    names — we implement everything the figures show and note the
    discrepancy in EXPERIMENTS.md). *)

let all : Defs.t list =
  W_cpu2006.apps @ W_cpu2017.apps @ W_miniapps.apps @ W_splash3.apps
  @ W_whisper.apps @ W_stamp.apps

let find name = List.find_opt (fun (w : Defs.t) -> w.name = name) all

let find_exn name =
  match find name with
  | Some w -> w
  | None -> invalid_arg (Printf.sprintf "unknown workload %S" name)

let by_suite suite = List.filter (fun (w : Defs.t) -> w.suite = suite) all

let memory_intensive = List.filter (fun (w : Defs.t) -> w.memory_intensive) all

let names = List.map (fun (w : Defs.t) -> w.name) all
