lib/workloads/defs.mli: Builder Cwsp_ir Prog
