lib/workloads/w_stamp.ml: Cwsp_ir Defs Kernels
