lib/workloads/w_whisper.ml: Cwsp_ir Defs Kernels
