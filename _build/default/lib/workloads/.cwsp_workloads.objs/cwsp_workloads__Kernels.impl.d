lib/workloads/kernels.ml: Builder Cwsp_ir List
