lib/workloads/registry.mli: Defs
