lib/workloads/w_splash3.ml: Cwsp_ir Defs Kernels
