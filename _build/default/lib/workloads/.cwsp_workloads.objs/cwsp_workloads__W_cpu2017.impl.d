lib/workloads/w_cpu2017.ml: Cwsp_ir Defs Kernels
