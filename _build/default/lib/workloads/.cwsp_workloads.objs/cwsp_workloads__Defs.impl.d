lib/workloads/defs.ml: Builder Cwsp_ir Cwsp_runtime List Prog
