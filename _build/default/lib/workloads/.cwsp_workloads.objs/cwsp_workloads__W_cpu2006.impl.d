lib/workloads/w_cpu2006.ml: Cwsp_ir Defs Kernels
