lib/workloads/registry.ml: Defs List Printf W_cpu2006 W_cpu2017 W_miniapps W_splash3 W_stamp W_whisper
