lib/workloads/w_miniapps.ml: Cwsp_ir Defs Kernels
