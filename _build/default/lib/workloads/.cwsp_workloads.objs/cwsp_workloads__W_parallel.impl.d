lib/workloads/w_parallel.ml: Builder Cwsp_ir Cwsp_runtime Defs Kernels List Prog Types
