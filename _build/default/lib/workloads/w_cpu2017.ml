(** SPEC CPU2017 stand-ins (7 applications, Fig. 13 second group). *)

open Cwsp_ir.Builder
open Defs
open Kernels

let app name ?(mem = false) description build =
  { name; suite = Cpu2017; description; memory_intensive = mem; build }

let dsjeng =
  app "dsjeng" "deep game-tree search: hash probes, compute-dense"
    (fun ~scale ->
      scaffold
        ~globals:[ g "ttable" (kib 96) ]
        ~body:(fun fb ->
          let tt = la fb "ttable" in
          let acc =
            random_access fb ~arr:tt ~n_words:(kib 96 / 8)
              ~iters:(5000 * scale) ~write_every:16 ~alu:11 ()
          in
          finish fb ~checksum_g:checksum_global acc)
        ())

let imagick =
  app "imagick" "image convolution passes plus buffer copies" (fun ~scale ->
      scaffold
        ~globals:[ g "img_a" (kib 256); g "img_b" (kib 256) ]
        ~body:(fun fb ->
          let a = la fb "img_a" in
          let b = la fb "img_b" in
          stencil fb ~src:a ~dst:b ~n:(6000 * scale) ~stride_words:4 ~alu:9 ();
          block_copies fb ~src:b ~dst:a ~blocks:10 ~block_bytes:2048;
          let acc = load fb b 0 in
          finish fb ~checksum_g:checksum_global acc)
        ())

let lbm17 =
  app "lbm17" ~mem:true "CPU2017 lattice-Boltzmann: larger streaming"
    (fun ~scale ->
      scaffold
        ~globals:[ g "lattice17" (mib 4) ]
        ~body:(fun fb ->
          let lat = la fb "lattice17" in
          for _round = 1 to 2 do
            let _ =
              sweep fb ~src:lat ~dst:lat ~n:(7000 * scale) ~stride_words:64
                ~write_every:2 ~alu:5
            in
            ()
          done;
          let acc = load fb lat 128 in
          finish fb ~checksum_g:checksum_global acc)
        ())

let leela =
  app "leela" "Monte-Carlo tree search: small-table probes" (fun ~scale ->
      scaffold
        ~globals:[ g "tree" (kib 64) ]
        ~body:(fun fb ->
          let tree = la fb "tree" in
          let acc =
            random_access fb ~arr:tree ~n_words:(kib 64 / 8)
              ~iters:(4500 * scale) ~write_every:10 ~alu:12 ()
          in
          finish fb ~checksum_g:checksum_global acc)
        ())

let nab =
  app "nab" "molecular modeling: medium matrix kernels" (fun ~scale ->
      scaffold
        ~globals:[ g "coords" (kib 128); g "vecn" (kib 8); g "outn" (kib 8) ]
        ~body:(fun fb ->
          let m = la fb "coords" in
          let v = la fb "vecn" in
          let o = la fb "outn" in
          matvec fb ~mat:m ~vec:v ~out:o ~rows:(16 * scale) ~cols:1024;
          let acc = load fb o 0 in
          finish fb ~checksum_g:checksum_global acc)
        ())

let namd17 =
  app "namd17" "molecular dynamics: compute-dense small kernels"
    (fun ~scale ->
      scaffold
        ~globals:[ g "forces17" (kib 48) ]
        ~body:(fun fb ->
          let forces = la fb "forces17" in
          let acc =
            sweep fb ~src:forces ~dst:forces ~n:(kib 48 / 8) ~stride_words:1
              ~write_every:12 ~alu:(14 + (2 * scale))
          in
          finish fb ~checksum_g:checksum_global acc)
        ())

let xz =
  app "xz" "LZMA-style match counting and dictionary updates" (fun ~scale ->
      scaffold
        ~globals:[ g "dict" (kib 64); g "stream" (kib 128) ]
        ~body:(fun fb ->
          let dict = la fb "dict" in
          let streamg = la fb "stream" in
          histogram fb ~bins:dict ~n_bins:(kib 64 / 8) ~iters:(4000 * scale) ~alu:8 ();
          let acc =
            sweep fb ~src:streamg ~dst:streamg ~n:(kib 128 / 8) ~stride_words:1
              ~write_every:3 ~alu:4
          in
          finish fb ~checksum_g:checksum_global acc)
        ())

let apps = [ dsjeng; imagick; lbm17; leela; nab; namd17; xz ]
