(** WHISPER stand-ins (6 applications, Fig. 13 fifth group; the figure
    labels them p, c, rb, sps, tatp, tpcc).

    WHISPER is the persistent-memory application suite: allocator-heavy
    pointer structures and transactional updates with high write density.
    The paper modified the suite's inputs to stress the DRAM cache
    (Section IX), so these are in the memory-intensive subset. *)

open Cwsp_ir.Builder
open Defs
open Kernels

let app name description build =
  { name; suite = Whisper; description; memory_intensive = true; build }

let p =
  app "p" "pmemlog-style append-only log: sequential persistent writes"
    (fun ~scale ->
      scaffold
        ~globals:[ g "plog" (mib 1) ]
        ~body:(fun fb ->
          let log = la fb "plog" in
          for _round = 1 to 2 do
            let _ =
              sweep_wide fb ~arr:log ~n_groups:(4000 * scale) ~stride_words:8
                ~alu:3 ~unroll:4
            in
            ()
          done;
          let acc = load fb log 0 in
          finish fb ~checksum_g:checksum_global acc)
        ())

let c =
  app "c" "ctree: allocator-built linked structure, insert-then-traverse"
    (fun ~scale ->
      scaffold
        ~globals:[ g "ctree_head" 8 ]
        ~body:(fun fb ->
          list_build fb ~head_g:"ctree_head" ~n:(4000 * scale) ~node_bytes:128 ();
          let acc = list_chase fb ~head_g:"ctree_head" ~rounds:3 ~write_every:8 ~alu:8 () in
          finish fb ~checksum_g:checksum_global acc)
        ())

let rb =
  app "rb" "rbtree: pointer-chasing updates over heap nodes" (fun ~scale ->
      scaffold
        ~globals:[ g "rb_head" 8 ]
        ~body:(fun fb ->
          list_build fb ~head_g:"rb_head" ~n:(5000 * scale) ~node_bytes:192 ();
          let acc = list_chase fb ~head_g:"rb_head" ~rounds:3 ~write_every:4 ~alu:6 () in
          finish fb ~checksum_g:checksum_global acc)
        ())

let sps =
  app "sps" "random swaps: two loads + two stores per operation"
    (fun ~scale ->
      scaffold
        ~globals:[ g "sps_arr" (mib 1) ]
        ~body:(fun fb ->
          let arr = la fb "sps_arr" in
          swaps fb ~arr ~n_words:(mib 1 / 8) ~iters:(9000 * scale)
            ~hot_words:(768 * 1024 / 8) ();
          let acc = load fb arr 0 in
          finish fb ~checksum_g:checksum_global acc)
        ())

let tatp =
  app "tatp" "telecom transactions: short locked updates" (fun ~scale ->
      scaffold
        ~globals:[ g "subscribers" (kib 512); g "tatp_lock" 8 ]
        ~body:(fun fb ->
          let accounts = la fb "subscribers" in
          transactions fb ~accounts ~n_accounts:(kib 512 / 8)
            ~lock_g:"tatp_lock" ~iters:(600 * scale) ~work:8 ~think:200 ();
          (* read-mostly subscriber scans between transaction batches *)
          for _round = 1 to 2 do
            let _ =
              sweep fb ~src:accounts ~dst:accounts ~n:(8192 * scale)
                ~stride_words:8 ~write_every:0 ~alu:2
            in
            ()
          done;
          let acc = load fb accounts 0 in
          finish fb ~checksum_g:checksum_global acc)
        ())

let tpcc =
  app "tpcc" "OLTP new-order mix: locked transfers plus an order log"
    (fun ~scale ->
      scaffold
        ~globals:
          [ g "warehouse" (mib 1); g "tpcc_lock" 8; g "order_log" (kib 256) ]
        ~body:(fun fb ->
          let accounts = la fb "warehouse" in
          transactions fb ~accounts ~n_accounts:(mib 1 / 8)
            ~lock_g:"tpcc_lock" ~iters:(450 * scale) ~work:16 ~think:200 ();
          (* order-status scans over the warehouse *)
          for _round = 1 to 2 do
            let _ =
              sweep fb ~src:accounts ~dst:accounts ~n:(8192 * scale)
                ~stride_words:16 ~write_every:0 ~alu:2
            in
            ()
          done;
          let olog = la fb "order_log" in
          let _ =
            sweep_wide fb ~arr:olog ~n_groups:(kib 256 / 64 / 4) ~stride_words:8
              ~alu:3 ~unroll:4
          in
          let acc = load fb accounts 0 in
          finish fb ~checksum_g:checksum_global acc)
        ())

let apps = [ p; c; rb; sps; tatp; tpcc ]
