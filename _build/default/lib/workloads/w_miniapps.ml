(** DOE Mini-apps stand-ins (2 applications, Fig. 13 third group).

    LULESH is the store-dense hydrodynamics stencil the paper's
    checkpoint-pruning section (IX-B) calls out as a big winner; XSBench
    is the classic random-table-lookup memory-latency probe (read-heavy,
    very large footprint). Both are in the memory-intensive subset. *)

open Cwsp_ir.Builder
open Defs
open Kernels

let app name description build =
  { name; suite = Miniapps; description; memory_intensive = true; build }

let lulesh =
  app "lulesh" "hydrodynamics stencil: one store per element update"
    (fun ~scale ->
      scaffold
        ~globals:[ g "nodes" (mib 2); g "elems" (mib 2) ]
        ~body:(fun fb ->
          let nodes = la fb "nodes" in
          let elems = la fb "elems" in
          for _round = 1 to 2 do
            stencil fb ~src:nodes ~dst:elems ~n:(7000 * scale)
              ~stride_words:32 ~alu:6 ()
          done;
          let acc = load fb elems 0 in
          finish fb ~checksum_g:checksum_global acc)
        ())

let xsbench =
  app "xsbench" "Monte-Carlo cross-section lookups: random reads over a huge table"
    (fun ~scale ->
      scaffold
        ~globals:[ g "xs_table" (mib 4) ]
        ~body:(fun fb ->
          let table = la fb "xs_table" in
          (* unionized-energy-grid walks: strided passes over a 1MB hot
             band of the table, repeated per batch of particles *)
          let hot = ref 0 in
          for _round = 1 to 2 do
            hot :=
              sweep fb ~src:table ~dst:table ~n:(8192 * scale)
                ~stride_words:16 ~write_every:0 ~alu:4
          done;
          (* plus genuinely random lookups across the whole table *)
          let acc =
            random_access fb ~arr:table ~n_words:(mib 4 / 8)
              ~iters:(4000 * scale) ~write_every:0 ~alu:6 ()
          in
          let acc = bin fb Cwsp_ir.Types.Add (Reg acc) (Reg !hot) in
          finish fb ~checksum_g:checksum_global acc)
        ())

let apps = [ lulesh; xsbench ]
