(** STAMP stand-ins (3 applications, Fig. 13 last group): transactional
    workloads whose critical sections are bounded by atomics — which the
    cWSP compiler treats as region boundaries and the hardware as
    persist-drain points (Section VIII). *)

open Cwsp_ir.Builder
open Defs
open Kernels

let app name ?(mem = false) description build =
  { name; suite = Stamp; description; memory_intensive = mem; build }

let kmeans =
  app "kmeans" "clustering: distance kernels plus locked centroid updates"
    (fun ~scale ->
      scaffold
        ~globals:
          [ g "points" (kib 128); g "centroids" (kib 8); g "km_lock" 8 ]
        ~body:(fun fb ->
          let pts = la fb "points" in
          let cent = la fb "centroids" in
          let _ =
            sweep fb ~src:pts ~dst:cent ~n:(kib 8 / 8) ~stride_words:1
              ~write_every:4 ~alu:10
          in
          transactions fb ~accounts:cent ~n_accounts:(kib 8 / 8)
            ~lock_g:"km_lock" ~iters:(300 * scale) ~work:16 ~think:280 ();
          let acc = load fb cent 0 in
          finish fb ~checksum_g:checksum_global acc)
        ())

let ssca2 =
  app "ssca2" "graph kernel: scattered edge-weight read-modify-writes"
    (fun ~scale ->
      scaffold
        ~globals:[ g "edges" (mib 1) ]
        ~body:(fun fb ->
          let edges = la fb "edges" in
          let acc =
            random_access fb ~arr:edges ~n_words:(mib 1 / 8)
              ~iters:(5000 * scale) ~write_every:1 ~alu:4 ()
          in
          finish fb ~checksum_g:checksum_global acc)
        ())

let vacation =
  app "vacation" "reservation system: medium locked transactions"
    (fun ~scale ->
      scaffold
        ~globals:[ g "reservations" (kib 512); g "vac_lock" 8 ]
        ~body:(fun fb ->
          let accounts = la fb "reservations" in
          transactions fb ~accounts ~n_accounts:(kib 512 / 8)
            ~lock_g:"vac_lock" ~iters:(450 * scale) ~work:12 ~think:220 ();
          let acc = load fb accounts 0 in
          finish fb ~checksum_g:checksum_global acc)
        ())

let apps = [ kmeans; ssca2; vacation ]
