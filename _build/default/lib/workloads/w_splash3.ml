(** SPLASH3 stand-ins (10 applications, Fig. 13 fourth group).

    The paper singles this suite out: short executions with good data
    locality (low L1D miss rates, ~2%) but many sequential/repeated
    writes, which pressure the persist path and make SPLASH3 the
    worst-overhead suite for every scheme (Sections IX-A, IX-H, IX-L).
    Accordingly these kernels are store-dense (a store every iteration)
    over SRAM-resident footprints. *)

open Cwsp_ir.Builder
open Defs
open Kernels

let app name ?(mem = false) description build =
  { name; suite = Splash3; description; memory_intensive = mem; build }

let cholesky =
  app "cholesky" "blocked factorization: in-place column updates"
    (fun ~scale ->
      scaffold
        ~globals:[ g "chol_m" (kib 64) ]
        ~body:(fun fb ->
          let m = la fb "chol_m" in
          for _round = 1 to 2 * scale do
            let _ =
              sweep_wide fb ~arr:m ~n_groups:(kib 64 / 8 / 4) ~stride_words:1
                ~alu:4 ~unroll:4
            in
            ()
          done;
          let acc = load fb m 0 in
          finish fb ~checksum_g:checksum_global acc)
        ())

let fft =
  app "fft" "butterfly passes: strided read-modify-write" (fun ~scale ->
      scaffold
        ~globals:[ g "signal" (kib 64) ]
        ~body:(fun fb ->
          let s = la fb "signal" in
          for _round = 1 to 2 * scale do
            let _ =
              sweep_wide fb ~arr:s ~n_groups:(kib 64 / 16 / 4) ~stride_words:2
                ~alu:5 ~unroll:4
            in
            ()
          done;
          let acc = load fb s 8 in
          finish fb ~checksum_g:checksum_global acc)
        ())

let lu_cg =
  app "lu-cg" "LU with contiguous blocks: dense row rewrites" (fun ~scale ->
      scaffold
        ~globals:[ g "lu_c" (kib 32) ]
        ~body:(fun fb ->
          let m = la fb "lu_c" in
          for _round = 1 to 3 * scale do
            let _ =
              sweep_wide fb ~arr:m ~n_groups:(kib 32 / 8 / 4) ~stride_words:1
                ~alu:5 ~unroll:4
            in
            ()
          done;
          let acc = load fb m 16 in
          finish fb ~checksum_g:checksum_global acc)
        ())

let lu_ncg =
  app "lu-ncg" "LU, non-contiguous blocks: strided rewrites" (fun ~scale ->
      scaffold
        ~globals:[ g "lu_n" (kib 64) ]
        ~body:(fun fb ->
          let m = la fb "lu_n" in
          for _round = 1 to 3 * scale do
            let _ =
              sweep_wide fb ~arr:m ~n_groups:(kib 64 / 64 / 4) ~stride_words:8
                ~alu:5 ~unroll:4
            in
            ()
          done;
          let acc = load fb m 24 in
          finish fb ~checksum_g:checksum_global acc)
        ())

let ocean_cg =
  app "ocg" "ocean simulation, contiguous grids: stencil rewrites"
    (fun ~scale ->
      scaffold
        ~globals:[ g "ocean_c" (kib 128) ]
        ~body:(fun fb ->
          let gr = la fb "ocean_c" in
          for _round = 1 to 2 * scale do
            stencil fb ~src:gr ~dst:gr ~n:4000 ~stride_words:1 ~alu:3 ()
          done;
          let acc = load fb gr 0 in
          finish fb ~checksum_g:checksum_global acc)
        ())

let ocean_ncg =
  app "oncg" "ocean simulation, non-contiguous grids" (fun ~scale ->
      scaffold
        ~globals:[ g "ocean_n" (kib 256) ]
        ~body:(fun fb ->
          let gr = la fb "ocean_n" in
          for _round = 1 to 2 * scale do
            stencil fb ~src:gr ~dst:gr ~n:4000 ~stride_words:4 ~alu:3 ()
          done;
          let acc = load fb gr 32 in
          finish fb ~checksum_g:checksum_global acc)
        ())

let radix =
  app "radix" "radix sort counting passes: dense bin increments"
    (fun ~scale ->
      scaffold
        ~globals:[ g "radix_bins" (kib 16) ]
        ~body:(fun fb ->
          let bins = la fb "radix_bins" in
          histogram fb ~bins ~n_bins:(kib 16 / 8) ~iters:(8000 * scale) ~alu:12 ();
          let acc = load fb bins 0 in
          finish fb ~checksum_g:checksum_global acc)
        ())

let raytrace =
  app "raytrace" "ray-object intersections: irregular reads, rare writes"
    (fun ~scale ->
      scaffold
        ~globals:[ g "scene" (kib 128) ]
        ~body:(fun fb ->
          let scene = la fb "scene" in
          let acc =
            random_access fb ~arr:scene ~n_words:(kib 128 / 8)
              ~iters:(5000 * scale) ~write_every:8 ~alu:10 ()
          in
          finish fb ~checksum_g:checksum_global acc)
        ())

let water_ns =
  app "water-ns" "N-squared molecular interactions: repeated force writes"
    (fun ~scale ->
      scaffold
        ~globals:[ g "wns" (kib 16) ]
        ~body:(fun fb ->
          let w = la fb "wns" in
          for _round = 1 to 6 * scale do
            let _ =
              sweep_wide fb ~arr:w ~n_groups:(kib 16 / 8 / 4) ~stride_words:1
                ~alu:6 ~unroll:4
            in
            ()
          done;
          let acc = load fb w 0 in
          finish fb ~checksum_g:checksum_global acc)
        ())

let water_sp =
  app "water-sp" "spatial molecular interactions: repeated cell writes"
    (fun ~scale ->
      scaffold
        ~globals:[ g "wsp" (kib 32) ]
        ~body:(fun fb ->
          let w = la fb "wsp" in
          for _round = 1 to 4 * scale do
            let _ =
              sweep_wide fb ~arr:w ~n_groups:(kib 32 / 8 / 4) ~stride_words:1
                ~alu:8 ~unroll:4
            in
            ()
          done;
          let acc = load fb w 8 in
          finish fb ~checksum_g:checksum_global acc)
        ())

let apps =
  [ cholesky; fft; lu_cg; lu_ncg; ocean_cg; ocean_ncg; radix; raytrace;
    water_ns; water_sp ]
