(** Plain-text table rendering for experiment output.

    Every figure/table reproduced in [bench/main.ml] prints through this
    module so the output stays aligned and diffable. *)

type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

(** [render ~headers rows] renders rows of string cells under [headers].
    The first column is left-aligned, the rest right-aligned (numeric). *)
let render ~headers rows =
  let ncols = List.length headers in
  List.iter
    (fun row ->
      if List.length row <> ncols then
        invalid_arg "Table.render: ragged row")
    rows;
  let widths = Array.make ncols 0 in
  let scan row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  scan headers;
  List.iter scan rows;
  let align_of i = if i = 0 then Left else Right in
  let line row =
    row
    |> List.mapi (fun i cell -> pad (align_of i) widths.(i) cell)
    |> String.concat "  "
  in
  let sep =
    Array.to_list widths |> List.map (fun w -> String.make w '-') |> String.concat "  "
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print ~headers rows = print_string (render ~headers rows)

(** Format a float like the paper's normalized-slowdown axes: [1.06]. *)
let f2 v = Printf.sprintf "%.2f" v
let f3 v = Printf.sprintf "%.3f" v
let int i = string_of_int i
