(** Plain-text table rendering for experiment output. *)

type align = Left | Right

(** Pad [s] to [width] with the given alignment. *)
val pad : align -> int -> string -> string

(** Render rows of string cells under [headers]: first column
    left-aligned, the rest right-aligned. Raises [Invalid_argument] on
    ragged rows. *)
val render : headers:string list -> string list list -> string

(** [render] straight to stdout. *)
val print : headers:string list -> string list list -> unit

(** Common numeric cell formats. *)
val f2 : float -> string

val f3 : float -> string
val int : int -> string
