(** Small numeric helpers used when aggregating simulation results.

    The paper reports per-suite and overall geometric means of normalized
    slowdowns; [gmean] is the workhorse. *)

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(** Geometric mean. All inputs must be positive. *)
let gmean = function
  | [] -> nan
  | xs ->
    let n = List.length xs in
    let sum_logs =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.gmean: non-positive input";
          acc +. log x)
        0.0 xs
    in
    exp (sum_logs /. float_of_int n)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
      /. float_of_int (List.length xs - 1)
    in
    sqrt var

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty"
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs

(** Accumulator for streaming averages (e.g. queue occupancy sampled every
    event). *)
module Acc = struct
  type t = { mutable sum : float; mutable count : int }

  let create () = { sum = 0.0; count = 0 }
  let add t v =
    t.sum <- t.sum +. v;
    t.count <- t.count + 1
  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
  let count t = t.count
end
