lib/util/table.mli:
