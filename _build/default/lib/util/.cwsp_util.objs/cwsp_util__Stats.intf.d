lib/util/stats.mli:
