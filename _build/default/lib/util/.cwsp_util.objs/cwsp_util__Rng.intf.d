lib/util/rng.mli:
