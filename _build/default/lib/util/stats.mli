(** Numeric helpers for aggregating simulation results. *)

(** Arithmetic mean; [nan] on the empty list. *)
val mean : float list -> float

(** Geometric mean — the paper's aggregate for normalized slowdowns.
    Raises [Invalid_argument] on non-positive inputs; [nan] when empty. *)
val gmean : float list -> float

(** Sample standard deviation (0 for fewer than two points). *)
val stddev : float list -> float

(** Smallest and largest element; raises [Invalid_argument] when empty. *)
val min_max : float list -> float * float

(** Streaming average accumulator (e.g. queue occupancy sampling). *)
module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val mean : t -> float
  val count : t -> int
end
