(** Dominator analysis (iterative Cooper–Harvey–Kennedy).

    Used by the checkpoint pruning pass to justify "function-wide
    constant" rematerialization: a unique operand-free definition can be
    re-evaluated at any boundary its block dominates, because every path
    to the boundary executed it. *)

open Cwsp_ir

type t = {
  idom : int array;        (* immediate dominator per block; entry maps to itself;
                              unreachable blocks map to -1 *)
  rpo_index : int array;   (* position in reverse postorder, -1 if unreachable *)
}

let compute (fn : Prog.func) : t =
  let n = Array.length fn.blocks in
  let rpo = Array.of_list (Cfg.reverse_postorder fn) in
  let rpo_index = Array.make n (-1) in
  Array.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  let preds = Cfg.predecessors fn in
  let idom = Array.make n (-1) in
  idom.(0) <- 0;
  let rec intersect a b =
    if a = b then a
    else if rpo_index.(a) > rpo_index.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> 0 then begin
          let processed =
            List.filter (fun p -> idom.(p) <> -1) preds.(b)
          in
          match processed with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if idom.(b) <> new_idom then begin
              idom.(b) <- new_idom;
              changed := true
            end
        end)
      rpo
  done;
  { idom; rpo_index }

(** Does block [a] dominate block [b]? Entry dominates everything
    reachable; unreachable blocks are dominated by nothing. *)
let dominates t ~a ~b =
  if t.idom.(b) = -1 || t.idom.(a) = -1 then false
  else
    let rec walk b = if b = a then true else if b = 0 then a = 0 else walk t.idom.(b) in
    walk b

(** Immediate dominator, if the block is reachable and not the entry. *)
let immediate_dominator t b =
  if b = 0 || t.idom.(b) = -1 then None else Some t.idom.(b)
