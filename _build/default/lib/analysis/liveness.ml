(** Classic backward liveness dataflow.

    The cWSP compiler checkpoints exactly the registers that are live
    across each region boundary (Section IV-B), so the checkpoint passes
    query [live_before] at boundary positions. *)

open Cwsp_ir
module IntSet = Set.Make (Int)

type t = {
  fn : Prog.func;
  live_out : IntSet.t array; (* per block: live at block exit *)
}

let block_transfer (blk : Prog.block) live_out =
  (* backward over terminator then instructions *)
  let live = List.fold_left (fun s r -> IntSet.add r s) live_out (Types.term_uses blk.term) in
  List.fold_left
    (fun live ins ->
      let live =
        match Types.def ins with Some d -> IntSet.remove d live | None -> live
      in
      List.fold_left (fun s r -> IntSet.add r s) live (Types.uses ins))
    live (List.rev blk.instrs)

let compute (fn : Prog.func) : t =
  let n = Array.length fn.blocks in
  let live_out = Array.make n IntSet.empty in
  let live_in = Array.make n IntSet.empty in
  let preds = Cfg.predecessors fn in
  let changed = ref true in
  (* iterate in postorder (reverse of RPO) for fast convergence *)
  let order = List.rev (Cfg.reverse_postorder fn) in
  while !changed do
    changed := false;
    List.iter
      (fun bi ->
        let out =
          List.fold_left
            (fun acc s -> IntSet.union acc live_in.(s))
            IntSet.empty (Cfg.successors fn bi)
        in
        let inn = block_transfer fn.blocks.(bi) out in
        if not (IntSet.equal out live_out.(bi)) then begin
          live_out.(bi) <- out;
          changed := true
        end;
        if not (IntSet.equal inn live_in.(bi)) then begin
          live_in.(bi) <- inn;
          changed := true
        end;
        ignore preds)
      order
  done;
  { fn; live_out }

(** Live registers immediately before instruction [ii] of block [bi]
    (an index equal to the instruction count addresses the point just
    before the terminator). *)
let live_before (t : t) ~bi ~ii =
  let blk = t.fn.blocks.(bi) in
  let ninstrs = List.length blk.instrs in
  if ii < 0 || ii > ninstrs then invalid_arg "Liveness.live_before: bad index";
  let live =
    List.fold_left
      (fun s r -> IntSet.add r s)
      t.live_out.(bi)
      (Types.term_uses blk.term)
  in
  (* walk backward from the terminator to position ii *)
  let rec walk live instrs pos =
    if pos < ii then live
    else
      match instrs with
      | [] -> live
      | ins :: rest ->
        let live =
          if pos >= ii then
            let live =
              match Types.def ins with
              | Some d -> IntSet.remove d live
              | None -> live
            in
            List.fold_left (fun s r -> IntSet.add r s) live (Types.uses ins)
          else live
        in
        walk live rest (pos - 1)
  in
  walk live (List.rev blk.instrs) (ninstrs - 1)
