(** Control-flow-graph utilities shared by the dataflow analyses. *)

open Cwsp_ir

let successors (fn : Prog.func) bi = Types.term_succs fn.blocks.(bi).term

let predecessors (fn : Prog.func) : int list array =
  let n = Array.length fn.blocks in
  let preds = Array.make n [] in
  for bi = 0 to n - 1 do
    List.iter (fun s -> preds.(s) <- bi :: preds.(s)) (successors fn bi)
  done;
  Array.map List.rev preds

(** Reverse postorder of reachable blocks (entry first). *)
let reverse_postorder (fn : Prog.func) : int list =
  let n = Array.length fn.blocks in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs bi =
    if not visited.(bi) then begin
      visited.(bi) <- true;
      List.iter dfs (successors fn bi);
      order := bi :: !order
    end
  in
  dfs 0;
  !order

let reachable (fn : Prog.func) : bool array =
  let n = Array.length fn.blocks in
  let seen = Array.make n false in
  let rec dfs bi =
    if not seen.(bi) then begin
      seen.(bi) <- true;
      List.iter dfs (successors fn bi)
    end
  in
  dfs 0;
  seen
