(** Control-flow-graph utilities shared by the dataflow analyses. *)

open Cwsp_ir

val successors : Prog.func -> int -> int list
val predecessors : Prog.func -> int list array

(** Reverse postorder of reachable blocks (entry first). *)
val reverse_postorder : Prog.func -> int list

val reachable : Prog.func -> bool array
