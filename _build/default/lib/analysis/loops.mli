(** Back-edge / loop-header detection (DFS criterion; builder-generated
    CFGs are reducible). cWSP places a region boundary at every loop
    header so each iteration is its own region (Section IV-A). *)

open Cwsp_ir

(** Per block: is it the target of a back edge? *)
val headers : Prog.func -> bool array
