(** Classic backward liveness dataflow. The checkpoint passes query
    [live_before] at region-boundary positions: cWSP checkpoints exactly
    the registers live across each boundary (Section IV-B). *)

open Cwsp_ir
module IntSet : Set.S with type elt = int

type t = {
  fn : Prog.func;
  live_out : IntSet.t array; (** per block: live at block exit *)
}

val compute : Prog.func -> t

(** Live registers immediately before instruction [ii] of block [bi]
    (an index equal to the instruction count addresses the point just
    before the terminator). *)
val live_before : t -> bi:int -> ii:int -> IntSet.t
