(** Back-edge / loop-header detection.

    cWSP inserts a region boundary at the header of each loop so that every
    iteration forms its own region (Section IV-A). Builder-generated CFGs
    are reducible, for which the DFS back-edge criterion identifies exactly
    the natural-loop headers. *)

open Cwsp_ir

(** Blocks that are the target of a back edge. *)
let headers (fn : Prog.func) : bool array =
  let n = Array.length fn.blocks in
  let state = Array.make n `White in
  let is_header = Array.make n false in
  let rec dfs bi =
    state.(bi) <- `Gray;
    List.iter
      (fun s ->
        match state.(s) with
        | `Gray -> is_header.(s) <- true (* back edge bi -> s *)
        | `White -> dfs s
        | `Black -> ())
      (Cfg.successors fn bi);
    state.(bi) <- `Black
  in
  if n > 0 then dfs 0;
  is_header
