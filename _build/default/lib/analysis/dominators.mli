(** Dominator analysis (iterative Cooper–Harvey–Kennedy). Used by
    checkpoint pruning to justify function-wide-constant
    rematerialization: a unique operand-free definition can be
    re-evaluated at any point its block dominates. *)

open Cwsp_ir

type t = {
  idom : int array;      (** immediate dominator; entry maps to itself;
                             unreachable blocks to -1 *)
  rpo_index : int array;
}

val compute : Prog.func -> t

(** Does block [a] dominate block [b]? *)
val dominates : t -> a:int -> b:int -> bool

val immediate_dominator : t -> int -> int option
