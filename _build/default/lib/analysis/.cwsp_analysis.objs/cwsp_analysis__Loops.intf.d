lib/analysis/loops.mli: Cwsp_ir Prog
