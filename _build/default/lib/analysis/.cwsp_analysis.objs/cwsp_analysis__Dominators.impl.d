lib/analysis/dominators.ml: Array Cfg Cwsp_ir List Prog
