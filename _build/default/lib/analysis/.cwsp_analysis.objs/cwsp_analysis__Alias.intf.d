lib/analysis/alias.mli: Cwsp_ir Prog
