lib/analysis/cfg.ml: Array Cwsp_ir List Prog Types
