lib/analysis/alias.ml: Array Cfg Cwsp_ir List Prog Types
