lib/analysis/liveness.ml: Array Cfg Cwsp_ir Int List Prog Set Types
