lib/analysis/loops.ml: Array Cfg Cwsp_ir List Prog
