lib/analysis/cfg.mli: Cwsp_ir Prog
