lib/analysis/liveness.mli: Cwsp_ir Prog Set
