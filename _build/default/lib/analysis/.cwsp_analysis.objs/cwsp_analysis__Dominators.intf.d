lib/analysis/dominators.mli: Cwsp_ir Prog
