lib/schemes/schemes.mli: Config Cwsp_compiler Cwsp_sim Engine Pipeline
