lib/schemes/schemes.ml: Config Cwsp_compiler Cwsp_sim Engine List Pipeline
