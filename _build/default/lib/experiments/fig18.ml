(** Figure 18: cWSP against ideal partial-system persistence
    (BBB/eADR/LightPC — no persist cost, but the DRAM cache cannot be
    enabled). Paper: cWSP ~3%, ideal PSP ~52% slowdown on the
    memory-intensive subset — the case for whole-system persistence. *)

open Cwsp_workloads

let title = "Fig 18: cWSP vs ideal PSP (BBB/eADR/LightPC)"

let run () =
  Exp.banner title;
  let cfg = Cwsp_sim.Config.default in
  let series =
    [
      ( "cWSP",
        fun w ->
          Cwsp_core.Api.slowdown ~label:"fig18" w
            ~scheme:Cwsp_schemes.Schemes.cwsp cfg );
      ( "idealPSP",
        fun w ->
          Cwsp_core.Api.slowdown ~label:"fig18" w
            ~scheme:Cwsp_schemes.Schemes.psp_ideal cfg );
    ]
  in
  Exp.per_workload_table ~subset:Registry.memory_intensive ~series ()
