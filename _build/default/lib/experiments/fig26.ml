(** Figure 26: sensitivity to per-MC WPQ size (8/16/24/32 entries).
    Paper: 11% average at 8 entries (up to 31% for write-heavy SPLASH3),
    stable from 24 up. *)

open Cwsp_sim

let title = "Fig 26: NVM WPQ size sweep"

let run () =
  Exp.banner title;
  let variants =
    List.map
      (fun n ->
        ( Printf.sprintf "WPQ-%d" n,
          Printf.sprintf "fig26-%d" n,
          { Config.default with wpq_entries = n } ))
      [ 8; 16; 24; 32 ]
  in
  Exp.cwsp_sweep ~variants ()
