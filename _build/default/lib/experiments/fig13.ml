(** Figure 13: normalized slowdown of cWSP to the baseline at 4GB/s
    persist-path bandwidth. Paper: 6% average; SPLASH3 is the worst suite
    (short regions, sequential/repeated writes). *)

let title = "Fig 13: cWSP slowdown vs baseline (4GB/s persist path)"

let run () =
  Exp.banner title;
  let cfg = Cwsp_sim.Config.default in
  let series =
    [ ("cWSP", fun w -> Cwsp_core.Api.slowdown w ~scheme:Cwsp_schemes.Schemes.cwsp cfg) ]
  in
  match Exp.per_workload_table ~series () with
  | [ overall ] ->
    Printf.printf "paper: 1.06 overall; measured: %.2f\n" overall;
    overall
  | _ -> assert false
