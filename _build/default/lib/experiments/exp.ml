(** Shared infrastructure for the per-figure experiment drivers.

    Conventions: every driver prints the same series the paper's figure
    plots — per-workload values with per-suite and overall geometric
    means, or per-suite series for the sweeps — and returns the headline
    number(s) so the integration tests can assert the reproduced *shape*
    (who wins, by roughly what factor). *)

open Cwsp_util
open Cwsp_workloads

let workloads = Registry.all

(* Occupancy-style series contain zeros; slowdown-style series use the
   geometric mean like the paper. *)
type agg = Gmean | Mean

let aggregate agg xs =
  match agg with Gmean -> Stats.gmean xs | Mean -> Stats.mean xs

let banner title =
  let line = String.make (String.length title) '=' in
  Printf.printf "\n%s\n%s\n" title line

(** Per-workload table: one row per workload, one column per series, plus
    per-suite gmean rows and an overall gmean row. [series] pairs a column
    header with an evaluation function. Returns the overall gmeans in
    series order. *)
let per_workload_table ?(subset = workloads) ?(agg = Gmean) ~series () =
  let headers = "workload" :: "suite" :: List.map fst series in
  let values =
    List.map (fun (w : Defs.t) -> (w, List.map (fun (_, f) -> f w) series)) subset
  in
  let row_of (w : Defs.t) vs =
    w.name :: Defs.suite_name w.suite :: List.map Table.f2 vs
  in
  let suite_rows =
    Defs.all_suites
    |> List.filter_map (fun suite ->
           let vs = List.filter (fun ((w : Defs.t), _) -> w.suite = suite) values in
           if vs = [] then None
           else
             let gm i = aggregate agg (List.map (fun (_, v) -> List.nth v i) vs) in
             Some
               ("gmean" :: Defs.suite_name suite
               :: List.mapi (fun i _ -> Table.f2 (gm i)) series))
  in
  let overall =
    List.mapi
      (fun i _ -> aggregate agg (List.map (fun (_, v) -> List.nth v i) values))
      series
  in
  let all_row = "gmean" :: "All" :: List.map Table.f2 overall in
  let rows =
    List.map (fun (w, vs) -> row_of w vs) values @ suite_rows @ [ all_row ]
  in
  Table.print ~headers rows;
  overall

(** Per-suite table for the sweeps: one row per suite plus All; one column
    per series. Returns the All-gmean per series. *)
let per_suite_table ?(subset = workloads) ~series () =
  let headers = "suite" :: List.map fst series in
  let values =
    List.map (fun (w : Defs.t) -> (w, List.map (fun (_, f) -> f w) series)) subset
  in
  let suite_row suite =
    let vs = List.filter (fun ((w : Defs.t), _) -> w.suite = suite) values in
    if vs = [] then None
    else
      let gm i = Stats.gmean (List.map (fun (_, v) -> List.nth v i) vs) in
      Some (Defs.suite_name suite :: List.mapi (fun i _ -> Table.f2 (gm i)) series)
  in
  let overall =
    List.mapi (fun i _ -> Stats.gmean (List.map (fun (_, v) -> List.nth v i) values)) series
  in
  let rows =
    List.filter_map suite_row Defs.all_suites
    @ [ "All" :: List.map Table.f2 overall ]
  in
  Table.print ~headers rows;
  overall

(** A cWSP-slowdown sweep over platform variants: [variants] are
    (column header, platform label, config). *)
let cwsp_sweep ~variants () =
  let series =
    List.map
      (fun (name, label, cfg) ->
        ( name,
          fun (w : Defs.t) ->
            Cwsp_core.Api.slowdown ~label w ~scheme:Cwsp_schemes.Schemes.cwsp cfg ))
      variants
  in
  per_suite_table ~series ()
