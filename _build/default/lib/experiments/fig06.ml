(** Figure 6: average occupancy of the L1D write buffer, baseline vs cWSP.
    Paper: both average ~0.39 entries — delaying WB writebacks for
    stale-read prevention puts no pressure on the WB. *)

open Cwsp_sim

let title = "Fig 6: average L1D write-buffer occupancy"

let occupancy scheme (w : Cwsp_workloads.Defs.t) =
  let st = Cwsp_core.Api.stats w scheme Config.default in
  Cwsp_util.Stats.Acc.mean st.wb_occupancy

let run () =
  Exp.banner title;
  let series =
    [
      ("baseline", occupancy Cwsp_schemes.Schemes.baseline);
      ("cWSP", occupancy Cwsp_schemes.Schemes.cwsp);
    ]
  in
  Exp.per_workload_table ~agg:Exp.Mean ~series ()
