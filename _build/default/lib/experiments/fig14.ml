(** Figure 14: cWSP against prior WSP schemes — ReplayCache and Capri —
    at 4GB/s (practical) and 32GB/s (ideal) persist-path bandwidth.
    Paper: ReplayCache ~4.3x, Capri-4GB ~1.27, cWSP-4GB ~1.06; Capri only
    matches cWSP with the ideal path. *)

open Cwsp_sim
open Cwsp_schemes

let title = "Fig 14: cWSP vs ReplayCache and Capri (4GB/s and 32GB/s)"

let cfg_bw bw = { Config.default with path_bandwidth_gbs = bw }

let slowdown scheme bw (w : Cwsp_workloads.Defs.t) =
  Cwsp_core.Api.slowdown
    ~label:(Printf.sprintf "fig14-bw%g" bw)
    w ~scheme (cfg_bw bw)

let run () =
  Exp.banner title;
  let series =
    [
      ("ReplayCache", slowdown Schemes.replaycache 4.0);
      ("Capri-4GB", slowdown Schemes.capri 4.0);
      ("Capri-32GB", slowdown Schemes.capri 32.0);
      ("cWSP-4GB", slowdown Schemes.cwsp 4.0);
      ("cWSP-32GB", slowdown Schemes.cwsp 32.0);
    ]
  in
  Exp.per_suite_table ~series ()
