(** Figure 21: sensitivity to persist-path bandwidth (1..32 GB/s).
    Paper: overhead falls with bandwidth and flattens beyond 10GB/s —
    the 8-byte persist granularity keeps the demand low. *)

open Cwsp_sim

let title = "Fig 21: persist-path bandwidth sweep"

let run () =
  Exp.banner title;
  let variants =
    List.map
      (fun bw ->
        ( Printf.sprintf "%gGB" bw,
          Printf.sprintf "fig21-%g" bw,
          { Config.default with path_bandwidth_gbs = bw } ))
      [ 1.0; 2.0; 4.0; 10.0; 20.0; 32.0 ]
  in
  Exp.cwsp_sweep ~variants ()
