(** Figure 27: sensitivity to NVM technology (PMEM / STT-MRAM / ReRAM).
    Paper: ~8% regardless of technology; faster NVM shows marginally
    higher *normalized* overhead because the baseline speeds up more. *)

open Cwsp_sim

let title = "Fig 27: NVM technology sweep"

let run () =
  Exp.banner title;
  let variants =
    List.map
      (fun (tech : Nvm.t) ->
        (tech.mem_name, "fig27-" ^ tech.mem_name, { Config.default with mem = tech }))
      Nvm.all_techs
  in
  Exp.cwsp_sweep ~variants ()
