(** Figure 22: sensitivity to RBT size (8/16/32 entries).
    Paper: 11% at 8 entries (short SPLASH3 regions stall), 6% at 16,
    4% at 32. *)

open Cwsp_sim

let title = "Fig 22: region boundary table (RBT) size sweep"

let run () =
  Exp.banner title;
  let variants =
    List.map
      (fun n ->
        ( Printf.sprintf "RBT-%d" n,
          Printf.sprintf "fig22-%d" n,
          { Config.default with rbt_entries = n } ))
      [ 8; 16; 32 ]
  in
  Exp.cwsp_sweep ~variants ()
