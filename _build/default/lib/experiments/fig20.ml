(** Figure 20: cWSP on a deeper SRAM hierarchy (private L2 + shared L3 in
    front of the DRAM cache). Paper: 8% average overhead. *)

let title = "Fig 20: cWSP slowdown with an added L3"

let run () =
  Exp.banner title;
  let cfg = Cwsp_sim.Config.with_l3 in
  let series =
    [
      ( "cWSP-L3",
        fun w ->
          Cwsp_core.Api.slowdown ~label:"fig20" w
            ~scheme:Cwsp_schemes.Schemes.cwsp cfg );
    ]
  in
  Exp.per_workload_table ~series ()
