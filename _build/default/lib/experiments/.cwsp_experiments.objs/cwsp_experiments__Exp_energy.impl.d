lib/experiments/exp_energy.ml: Config Cwsp_sim Cwsp_util Energy Exp List Printf
