lib/experiments/fig24.ml: Config Cwsp_sim Exp List Printf
