lib/experiments/fig23.ml: Config Cwsp_sim Exp List Printf
