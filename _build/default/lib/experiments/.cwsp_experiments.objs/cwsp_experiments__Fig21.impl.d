lib/experiments/fig21.ml: Config Cwsp_sim Exp List Printf
