lib/experiments/fig13.ml: Cwsp_core Cwsp_schemes Cwsp_sim Exp Printf
