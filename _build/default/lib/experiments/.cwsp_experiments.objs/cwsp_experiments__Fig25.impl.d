lib/experiments/fig25.ml: Config Cwsp_sim Exp List Printf
