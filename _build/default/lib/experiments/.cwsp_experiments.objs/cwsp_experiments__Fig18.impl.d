lib/experiments/fig18.ml: Cwsp_core Cwsp_schemes Cwsp_sim Cwsp_workloads Exp Registry
