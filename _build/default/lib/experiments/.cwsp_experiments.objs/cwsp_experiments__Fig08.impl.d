lib/experiments/fig08.ml: Config Cwsp_core Cwsp_schemes Cwsp_sim Cwsp_workloads Exp Stats
