lib/experiments/fig19.ml: Cwsp_compiler Cwsp_core Cwsp_interp Cwsp_workloads Exp List Printf
