lib/experiments/fig26.ml: Config Cwsp_sim Exp List Printf
