lib/experiments/fig20.ml: Cwsp_core Cwsp_schemes Cwsp_sim Exp
