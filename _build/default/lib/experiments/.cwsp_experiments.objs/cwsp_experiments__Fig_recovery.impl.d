lib/experiments/fig_recovery.ml: Cwsp_compiler Cwsp_core Cwsp_interp Cwsp_util Cwsp_workloads Defs Exp List Printf Registry
