lib/experiments/fig06.ml: Config Cwsp_core Cwsp_schemes Cwsp_sim Cwsp_util Cwsp_workloads Exp
