lib/experiments/exp_mp.ml: Cwsp_compiler Cwsp_interp Cwsp_sim Cwsp_util Cwsp_workloads Exp List Printf
