lib/experiments/fig22.ml: Config Cwsp_sim Exp List Printf
