lib/experiments/fig15.ml: Cwsp_core Cwsp_schemes Cwsp_sim Exp List
