lib/experiments/hw_overhead.ml: Cwsp_sim Cwsp_util Exp Printf
