lib/experiments/fig01.ml: Config Cwsp_core Cwsp_schemes Cwsp_sim Cwsp_workloads Defs Exp List Nvm Printf Registry Stats
