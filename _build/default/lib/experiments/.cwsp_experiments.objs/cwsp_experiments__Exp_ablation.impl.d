lib/experiments/exp_ablation.ml: Config Cwsp_compiler Cwsp_core Cwsp_schemes Cwsp_sim Cwsp_workloads Engine Exp Pipeline Stats
