lib/experiments/fig27.ml: Config Cwsp_sim Exp List Nvm
