lib/experiments/exp.ml: Cwsp_core Cwsp_schemes Cwsp_util Cwsp_workloads Defs List Printf Registry Stats String Table
