lib/experiments/fig17.ml: Config Cwsp_core Cwsp_schemes Cwsp_sim Cwsp_util Cwsp_workloads Defs Exp List Nvm Printf Registry
