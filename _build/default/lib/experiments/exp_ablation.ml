(** Design-choice ablations (extension): the alternatives DESIGN.md §5
    calls out, run head-to-head against full cWSP.

    - {b no MC speculation}: conservative region-end drains (the
      prior-work behaviour of Section II-B) instead of RBT admission;
    - {b no checkpoint pruning}: every live-out checkpointed (iDO-style
      compilation, Fig. 15 stage 5);
    - {b no scalar optimization}: the pipeline without the -O3-style
      passes — both binaries unoptimized, isolating how much instruction
      quality matters to the persistence overhead. *)

open Cwsp_compiler
open Cwsp_sim

let title = "Ablation (extension): design choices vs full cWSP"

let no_opt_scheme : Cwsp_schemes.Schemes.t =
  {
    s_name = "cwsp-noopt";
    s_compile = { Pipeline.cwsp with optimize = false };
    s_engine = Engine.Cwsp Engine.cwsp_full;
    s_reconfig = (fun c -> c);
  }

let no_opt_baseline : Cwsp_schemes.Schemes.t =
  {
    s_name = "baseline-noopt";
    s_compile = { Pipeline.baseline with optimize = false };
    s_engine = Engine.Baseline;
    s_reconfig = (fun c -> c);
  }

(* unoptimized cWSP against an unoptimized baseline: isolates the
   persistence cost when both sides carry the same instruction bloat *)
let noopt_slowdown (w : Cwsp_workloads.Defs.t) =
  let cfg = Config.default in
  let base = Cwsp_core.Api.stats ~label:"abl" w no_opt_baseline cfg in
  let st = Cwsp_core.Api.stats ~label:"abl" w no_opt_scheme cfg in
  Stats.slowdown st ~baseline:base

let run () =
  Exp.banner title;
  let cfg = Config.default in
  let series =
    [
      ( "cWSP",
        fun w -> Cwsp_core.Api.slowdown ~label:"abl" w ~scheme:Cwsp_schemes.Schemes.cwsp cfg );
      ( "no-MC-spec",
        fun w ->
          Cwsp_core.Api.slowdown ~label:"abl" w
            ~scheme:Cwsp_schemes.Schemes.cwsp_no_speculation cfg );
      ( "no-pruning",
        fun w ->
          Cwsp_core.Api.slowdown ~label:"abl" w
            ~scheme:Cwsp_schemes.Schemes.cwsp_no_prune cfg );
      ("no-opt (both)", noopt_slowdown);
    ]
  in
  Exp.per_suite_table ~series ()
