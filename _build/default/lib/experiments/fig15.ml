(** Figure 15: cumulative impact of each cWSP optimization.
    Paper: +RegionFormation 4%, +PersistPath 10%, +MCSpeculation /
    +WBDelay / +WPQDelay flat, +Pruning drops to 6% overall. *)

let title = "Fig 15: per-optimization ablation (cumulative stages)"

let run () =
  Exp.banner title;
  let cfg = Cwsp_sim.Config.default in
  let series =
    List.map
      (fun (name, scheme) ->
        (name, fun w -> Cwsp_core.Api.slowdown ~label:"fig15" w ~scheme cfg))
      Cwsp_schemes.Schemes.fig15_stages
  in
  Exp.per_suite_table ~series ()
