(** Experiment index: id -> driver. [bench/main.exe] runs these. *)

type entry = { id : string; etitle : string; erun : unit -> unit }

let e id etitle erun = { id; etitle; erun }

let all : entry list =
  [
    e "fig1" Fig01.title (fun () -> ignore (Fig01.run ()));
    e "fig6" Fig06.title (fun () -> ignore (Fig06.run ()));
    e "fig8" Fig08.title (fun () -> ignore (Fig08.run ()));
    e "fig13" Fig13.title (fun () -> ignore (Fig13.run ()));
    e "fig14" Fig14.title (fun () -> ignore (Fig14.run ()));
    e "fig15" Fig15.title (fun () -> ignore (Fig15.run ()));
    e "fig17" Fig17.title (fun () -> ignore (Fig17.run ()));
    e "fig18" Fig18.title (fun () -> ignore (Fig18.run ()));
    e "fig19" Fig19.title (fun () -> ignore (Fig19.run ()));
    e "fig20" Fig20.title (fun () -> ignore (Fig20.run ()));
    e "fig21" Fig21.title (fun () -> ignore (Fig21.run ()));
    e "fig22" Fig22.title (fun () -> ignore (Fig22.run ()));
    e "fig23" Fig23.title (fun () -> ignore (Fig23.run ()));
    e "fig24" Fig24.title (fun () -> ignore (Fig24.run ()));
    e "fig25" Fig25.title (fun () -> ignore (Fig25.run ()));
    e "fig26" Fig26.title (fun () -> ignore (Fig26.run ()));
    e "fig27" Fig27.title (fun () -> ignore (Fig27.run ()));
    e "hw" Hw_overhead.title (fun () -> ignore (Hw_overhead.run ()));
    e "recovery" Fig_recovery.title (fun () -> ignore (Fig_recovery.run ()));
    e "mp" Exp_mp.title (fun () -> ignore (Exp_mp.run ()));
    e "energy" Exp_energy.title (fun () -> ignore (Exp_energy.run ()));
    e "breakdown" Exp_breakdown.title (fun () -> ignore (Exp_breakdown.run ()));
    e "ablation" Exp_ablation.title (fun () -> ignore (Exp_ablation.run ()));
  ]

let find id = List.find_opt (fun x -> x.id = id) all

let run_all () = List.iter (fun x -> x.erun ()) all
