(** Figure 25: sensitivity to persist-buffer size (20/40/50/60 entries).
    Paper: insensitive; only 7% even at 20 entries. *)

open Cwsp_sim

let title = "Fig 25: persist buffer (PB) size sweep"

let run () =
  Exp.banner title;
  let variants =
    List.map
      (fun n ->
        ( Printf.sprintf "PB-%d" n,
          Printf.sprintf "fig25-%d" n,
          { Config.default with pb_entries = n } ))
      [ 20; 40; 50; 60 ]
  in
  Exp.cwsp_sweep ~variants ()
