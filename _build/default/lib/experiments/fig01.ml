(** Figure 1 (motivation): normalized slowdown of CXL PMEM main memory
    against CXL DRAM main memory, as the cache hierarchy deepens from 2 to
    5 levels (the 5th is the DRAM cache). Paper: 2.14x at 2 levels
    shrinking to 1.34x at 5 levels, over memory-intensive applications.
    No persistence scheme is involved — this is the case for WSP's
    deep-hierarchy premise. *)

open Cwsp_sim
open Cwsp_workloads

let title = "Fig 1: CXL-PMEM vs CXL-DRAM slowdown, 2..5 cache levels"

let slowdown_at_levels levels (w : Defs.t) =
  let base = Config.fig1_levels levels in
  let pmem_cfg = { base with mem = Nvm.cxl_pmem } in
  let dram_cfg = { base with mem = Nvm.cxl_dram } in
  let label n = Printf.sprintf "fig1-%d-%s" levels n in
  let st_pmem =
    Cwsp_core.Api.stats ~label:(label "pmem") w Cwsp_schemes.Schemes.baseline pmem_cfg
  in
  let st_dram =
    Cwsp_core.Api.stats ~label:(label "dram") w Cwsp_schemes.Schemes.baseline dram_cfg
  in
  Stats.slowdown st_pmem ~baseline:st_dram

let run () =
  Exp.banner title;
  let series =
    List.map
      (fun levels ->
        (Printf.sprintf "%d levels" levels, slowdown_at_levels levels))
      [ 2; 3; 4; 5 ]
  in
  Exp.per_workload_table ~subset:Registry.memory_intensive ~series ()
