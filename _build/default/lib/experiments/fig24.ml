(** Figure 24: sensitivity to L1D write-buffer size (8/16/32 entries).
    Paper: flat — the persist path is fast enough that delayed writebacks
    never back the WB up. *)

open Cwsp_sim

let title = "Fig 24: L1D write-buffer size sweep"

let run () =
  Exp.banner title;
  let variants =
    List.map
      (fun n ->
        ( Printf.sprintf "WB-%d" n,
          Printf.sprintf "fig24-%d" n,
          { Config.default with wb_entries = n } ))
      [ 8; 16; 32 ]
  in
  Exp.cwsp_sweep ~variants ()
