(** Figure 8: WPQ hits per one million instructions under cWSP.
    Paper: 0.98 on average — loads that reach main memory while the
    target word is still pending in a WPQ are vanishingly rare, which is
    why delaying them (Section V-A2) is free. *)

open Cwsp_sim

let title = "Fig 8: WPQ hits per 1M instructions (cWSP)"

let hpmi (w : Cwsp_workloads.Defs.t) =
  let st = Cwsp_core.Api.stats w Cwsp_schemes.Schemes.cwsp Config.default in
  Stats.wpq_hits_per_minstr st

let run () =
  Exp.banner title;
  let series = [ ("WPQ-HPMI", hpmi) ] in
  Exp.per_workload_table ~agg:Exp.Mean ~series ()
