(** Figure 19: average number of dynamic instructions per idempotent
    region. Paper: 38.15 on average; with a 16-entry RBT the persist
    latency of the oldest region overlaps ~572 instructions of
    execution. *)

let title = "Fig 19: dynamic instructions per region (cWSP binary)"

let lengths_of (w : Cwsp_workloads.Defs.t) =
  let tr = Cwsp_core.Api.trace w Cwsp_compiler.Pipeline.cwsp in
  Cwsp_interp.Trace.region_lengths tr

let avg lens =
  match lens with
  | [] -> 1.0
  | _ ->
    float_of_int (List.fold_left ( + ) 0 lens) /. float_of_int (List.length lens)

let percentile lens p =
  match List.sort compare lens with
  | [] -> 1.0
  | sorted ->
    let n = List.length sorted in
    float_of_int (List.nth sorted (min (n - 1) (p * n / 100)))

let run () =
  Exp.banner title;
  let series =
    [
      ("mean", fun w -> avg (lengths_of w));
      ("p50", fun w -> percentile (lengths_of w) 50);
      ("p90", fun w -> percentile (lengths_of w) 90);
    ]
  in
  match Exp.per_workload_table ~series () with
  | overall :: _ ->
    Printf.printf "paper: 38.15 overall average; measured gmean of means: %.1f\n"
      overall;
    overall
  | _ -> assert false
