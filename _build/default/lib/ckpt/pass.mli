(** Live-out register checkpointing and checkpoint pruning
    (Sections IV-B, IV-C; pruning follows Penny's reconstruction idea).

    Step 1 inserts [Ckpt r] before every region boundary for every
    register live across it. Step 2 computes, per (boundary, register), a
    recovery plan — read the slot, or rematerialize from immediates,
    global addresses and other checkpointed registers — and removes every
    checkpoint the plans do not need. Any join disagreement, unresolved
    dependency or potentially-stale slot reference falls back to keeping
    the checkpoint, which is always sound. The soundness argument for the
    three slot-reference flavours is in DESIGN.md §5b. *)

open Cwsp_ir

type result = {
  fn : Prog.func;
  slices : (int, Slice.t) Hashtbl.t; (** boundary id -> recovery slice *)
  inserted : int;                    (** checkpoints before pruning *)
  kept : int;                        (** checkpoints surviving pruning *)
}

(** Full checkpoint pass over one region-formed function (which must not
    already contain checkpoints). With [prune = false] every inserted
    checkpoint is kept — the iDO-like configuration of the Fig. 15
    ablation. *)
val run_func : ?prune:bool -> Prog.func -> result
