lib/ckpt/pass.ml: Array Cwsp_analysis Cwsp_ir Hashtbl Int List Liveness Option Prog Regions Set Slice Types
