lib/ckpt/pass.mli: Cwsp_ir Hashtbl Prog Slice
