lib/ckpt/regions.ml: Array Cwsp_analysis Cwsp_ir Hashtbl Int List Prog Set Types
