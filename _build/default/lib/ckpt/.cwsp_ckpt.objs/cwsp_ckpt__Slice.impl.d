lib/ckpt/slice.ml: Cwsp_ir Eval List Pp Printf String Types
