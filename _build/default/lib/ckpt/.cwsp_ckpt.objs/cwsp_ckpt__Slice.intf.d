lib/ckpt/slice.mli: Cwsp_ir Types
