(** Static region (boundary) graph utilities for the checkpoint passes.

    The pruning analysis reasons per boundary [k] about the region that
    *precedes* it. That region is decomposed into three parts:

    - the *segment*: the straight-line instructions in [k]'s own block
      between the previous boundary (or block start) and [k] — common to
      every path into [k];
    - per region-predecessor boundary [p], the *suffix* of [p]'s block
      after [p];
    - the *intermediate* boundary-free blocks traversed between
      predecessors' blocks and [k]'s block (conservatively shared across
      all predecessors).

    Rematerialization is possible exactly when a register's defining
    instruction is pinned to the segment or to one predecessor's suffix
    with no other definition downstream — which is what this module's
    def-set decomposition lets the pass decide. *)

open Cwsp_ir
module IntSet = Set.Make (Int)

type bpos = { bi : int; ii : int; id : int }

let boundaries (fn : Prog.func) : bpos array =
  let out = ref [] in
  Array.iteri
    (fun bi (blk : Prog.block) ->
      List.iteri
        (fun ii ins ->
          match ins with
          | Types.Boundary id -> out := { bi; ii; id } :: !out
          | _ -> ())
        blk.instrs)
    fn.blocks;
  Array.of_list (List.rev !out)

type t = {
  fn : Prog.func;
  code : Types.instr array array;
  bounds : bpos array;
  index_of : (int * int, int) Hashtbl.t; (* (bi, ii) -> boundary index *)
  preds : int list array;                (* CFG preds per block *)
  never_defined : bool array;            (* per register: no def anywhere *)
  constant_def : (Types.instr * int * int) option array;
    (* registers with exactly one static, operand-free def (La /
       Mov-immediate): (instr, block, index). The value is
       rematerializable at any program point the def dominates. *)
  doms : Cwsp_analysis.Dominators.t;
}

let build (fn : Prog.func) : t =
  let code = Array.map (fun (b : Prog.block) -> Array.of_list b.instrs) fn.blocks in
  let bounds = boundaries fn in
  let index_of = Hashtbl.create (max 4 (Array.length bounds)) in
  Array.iteri (fun k (b : bpos) -> Hashtbl.replace index_of (b.bi, b.ii) k) bounds;
  let never_defined = Array.make (max 1 fn.nregs) true in
  let def_count = Array.make (max 1 fn.nregs) 0 in
  Array.iter
    (Array.iter (fun ins ->
         match Types.def ins with
         | Some d ->
           never_defined.(d) <- false;
           def_count.(d) <- def_count.(d) + 1
         | None -> ()))
    code;
  let constant_def = Array.make (max 1 fn.nregs) None in
  Array.iteri
    (fun bi blk ->
      Array.iteri
        (fun ii ins ->
          match (ins, Types.def ins) with
          | (Types.La _ | Types.Mov (_, Types.Imm _)), Some d
            when def_count.(d) = 1 ->
            constant_def.(d) <- Some (ins, bi, ii)
          | _ -> ())
        blk)
    code;
  { fn; code; bounds; index_of; preds = Cwsp_analysis.Cfg.predecessors fn;
    never_defined; constant_def; doms = Cwsp_analysis.Dominators.compute fn }

let boundary_index t ~bi ~ii = Hashtbl.find t.index_of (bi, ii)

(* Nearest boundary strictly before index [ii] in block [bi], if any. *)
let nearest_boundary_before t ~bi ~ii =
  let code = t.code.(bi) in
  let rec scan j =
    if j < 0 then None
    else match code.(j) with Types.Boundary _ -> Some j | _ -> scan (j - 1)
  in
  scan (ii - 1)

let last_boundary t bi =
  nearest_boundary_before t ~bi ~ii:(Array.length t.code.(bi))

let defs_in t bi lo hi =
  let code = t.code.(bi) in
  let s = ref IntSet.empty in
  for j = lo to hi do
    match Types.def code.(j) with
    | Some d -> s := IntSet.add d !s
    | None -> ()
  done;
  !s

(** One straight-line piece of code: block [sbi], positions [lo, hi). *)
type span = { sbi : int; lo : int; hi : int }

let span_defs t (s : span) = defs_in t s.sbi s.lo (s.hi - 1)

type pred_entry = {
  pe_pred : int;     (* index into [bounds] *)
  pe_suffix : span;  (* the predecessor's block suffix after its boundary *)
}

type info = {
  segment : span;               (* k's own pre-boundary straight line *)
  segment_defs : IntSet.t;
  pred_entries : pred_entry list;
  intermediate_defs : IntSet.t; (* defs in traversed boundary-free blocks *)
}

(** Can the unique operand-free definition of [r] be re-evaluated at
    position (bi, ii)? Requires the def's block to dominate the use (so
    every path executed it), with in-block ordering when they coincide. *)
let constant_at t r ~bi ~ii =
  match t.constant_def.(r) with
  | Some (ins, dbi, dii)
    when (dbi = bi && dii < ii)
         || (dbi <> bi && Cwsp_analysis.Dominators.dominates t.doms ~a:dbi ~b:bi)
    ->
    Some ins
  | Some _ | None -> None

(** Decompose the region preceding boundary [k]. *)
let info (t : t) (k : int) : info =
  let b = t.bounds.(k) in
  let seg_lo =
    match nearest_boundary_before t ~bi:b.bi ~ii:b.ii with
    | Some j -> j + 1
    | None -> 0
  in
  let segment = { sbi = b.bi; lo = seg_lo; hi = b.ii } in
  let segment_defs = span_defs t segment in
  if seg_lo > 0 then
    (* a boundary precedes k in its own block: single same-block pred with
       an empty suffix (the segment plays the suffix's role) *)
    {
      segment;
      segment_defs;
      pred_entries =
        [ { pe_pred = boundary_index t ~bi:b.bi ~ii:(seg_lo - 1);
            pe_suffix = { sbi = b.bi; lo = seg_lo; hi = seg_lo } } ];
      intermediate_defs = IntSet.empty;
    }
  else begin
    (* walk CFG predecessors through boundary-free blocks *)
    let pred_entries = ref [] in
    let intermediate_defs = ref IntSet.empty in
    let visited = Array.make (Array.length t.fn.blocks) false in
    let rec walk bi =
      if not visited.(bi) then begin
        visited.(bi) <- true;
        match last_boundary t bi with
        | Some j ->
          let p = boundary_index t ~bi ~ii:j in
          if not (List.exists (fun e -> e.pe_pred = p) !pred_entries) then
            pred_entries :=
              { pe_pred = p;
                pe_suffix = { sbi = bi; lo = j + 1; hi = Array.length t.code.(bi) } }
              :: !pred_entries
        | None ->
          intermediate_defs :=
            IntSet.union !intermediate_defs
              (defs_in t bi 0 (Array.length t.code.(bi) - 1));
          List.iter walk t.preds.(bi)
      end
    in
    List.iter walk t.preds.(b.bi);
    {
      segment;
      segment_defs;
      pred_entries = List.rev !pred_entries;
      intermediate_defs = !intermediate_defs;
    }
  end
