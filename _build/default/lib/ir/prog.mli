(** Basic blocks, functions, programs.

    Blocks and functions are immutable; compiler passes construct new
    functions rather than mutating in place, which keeps pass composition
    and testing simple. *)

type block = { instrs : Types.instr list; term : Types.term }

type func = {
  name : string;
  nparams : int;        (** parameters are registers [0 .. nparams-1] *)
  nregs : int;          (** virtual register count *)
  blocks : block array; (** entry is [blocks.(0)] *)
}

type global = {
  gname : string;
  size : int;              (** bytes; 8-byte aligned *)
  init : (int * int) list; (** word-index -> initial value *)
}

type t = {
  globals : global list;
  funcs : (string * func) list; (** ordered, for deterministic printing *)
  main : string;
}

val find_func : t -> string -> func option

(** Raises [Invalid_argument] when the function is missing. *)
val func_exn : t -> string -> func

val find_global : t -> string -> global option

(** Replace (or append) a function, preserving order. *)
val with_func : t -> func -> t

(** Apply a transformation to every function of the program. *)
val map_funcs : (func -> func) -> t -> t

(** Iterate instructions as [f block_index instr_index instr]. *)
val iter_instrs : (int -> int -> Types.instr -> unit) -> func -> unit

val fold_instrs : ('a -> int -> int -> Types.instr -> 'a) -> 'a -> func -> 'a

(** Static instruction count (terminators excluded). *)
val instr_count : func -> int

val total_instr_count : t -> int

(** Highest region-boundary id used in the function, or -1. *)
val max_boundary_id : func -> int
