(** Total evaluation semantics for IR operators over the 63-bit machine
    word (native OCaml int).

    Shared by the functional interpreter and the recovery runtime —
    recovery slices re-evaluate the very same operators, so there is
    exactly one definition of each. Division and remainder by zero are
    total (yield 0); shift amounts are masked to [0, 63] with
    out-of-width shifts saturating. *)

val word_bits : int

val binop : Types.binop -> int -> int -> int
val cmpop : Types.cmpop -> int -> int -> int
