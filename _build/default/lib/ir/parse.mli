(** Parser for the textual IR syntax produced by [Pp]: programs
    round-trip through [Pp.program_str] and [program], giving the
    [cwspc] driver a file format and the test suite a printer/parser
    consistency oracle. The grammar is documented in the implementation
    header. *)

exception Parse_error of int * string (** line number, message *)

(** Parse a whole program. Raises [Parse_error] on malformed input and
    [Failure] on structural problems (unterminated block, missing
    main). The result should be [Validate.check]ed. *)
val program : string -> Prog.t
