lib/ir/builder.pp.mli: Prog Types
