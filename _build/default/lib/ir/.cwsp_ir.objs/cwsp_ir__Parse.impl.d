lib/ir/parse.pp.ml: Array List Printf Prog String Types
