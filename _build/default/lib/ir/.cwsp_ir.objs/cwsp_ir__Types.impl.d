lib/ir/types.pp.ml: List Ppx_deriving_runtime
