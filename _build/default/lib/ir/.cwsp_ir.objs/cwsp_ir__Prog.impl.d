lib/ir/prog.pp.ml: Array List Printf Types
