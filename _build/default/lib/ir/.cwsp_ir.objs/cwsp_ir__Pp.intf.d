lib/ir/pp.pp.mli: Prog Types
