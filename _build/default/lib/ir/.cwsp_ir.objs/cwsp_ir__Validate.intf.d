lib/ir/validate.pp.mli: Prog
