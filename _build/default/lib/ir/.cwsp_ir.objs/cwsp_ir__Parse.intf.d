lib/ir/parse.pp.mli: Prog
