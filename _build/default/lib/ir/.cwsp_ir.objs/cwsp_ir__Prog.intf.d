lib/ir/prog.pp.mli: Types
