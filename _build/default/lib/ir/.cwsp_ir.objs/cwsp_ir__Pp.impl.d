lib/ir/pp.pp.ml: Array Buffer List Printf Prog String Types
