lib/ir/validate.pp.ml: Array Hashtbl List Printf Prog String Types
