lib/ir/eval.pp.mli: Types
