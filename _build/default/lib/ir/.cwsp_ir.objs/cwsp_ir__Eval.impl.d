lib/ir/eval.pp.ml: Sys Types
