(** Total evaluation semantics for IR operators over the 63-bit machine
    word (native OCaml int).

    Shared by the functional interpreter ([Cwsp_interp]) and the recovery
    runtime ([Cwsp_recovery]) — recovery slices re-evaluate the very same
    operators, so there is exactly one definition of each. *)

let word_bits = Sys.int_size (* 63 on 64-bit platforms *)

let binop (op : Types.binop) (a : int) (b : int) : int =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else if b = -1 then -a else a / b
  | Rem -> if b = 0 then 0 else if b = -1 then 0 else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl ->
    let s = b land 63 in
    if s >= word_bits then 0 else a lsl s
  | Lshr ->
    let s = b land 63 in
    if s >= word_bits then 0 else a lsr s
  | Ashr ->
    let s = b land 63 in
    if s >= word_bits then a asr (word_bits - 1) else a asr s

let cmpop (op : Types.cmpop) (a : int) (b : int) : int =
  let r =
    match op with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt -> a < b
    | Le -> a <= b
    | Gt -> a > b
    | Ge -> a >= b
  in
  if r then 1 else 0
