(** Human-readable assembly-like printing of IR programs, used by the
    [cwspc --dump-ir] driver and by examples to show where the compiler
    placed boundaries and checkpoints. *)

val operand_str : Types.operand -> string
val binop_str : Types.binop -> string
val cmpop_str : Types.cmpop -> string
val instr_str : Types.instr -> string
val term_str : Types.term -> string
val func_str : Prog.func -> string
val program_str : Prog.t -> string
