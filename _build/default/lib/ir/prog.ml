(** Basic blocks, functions, programs.

    Blocks and functions are immutable; compiler passes construct new
    functions rather than mutating in place, which keeps pass composition
    and testing simple. *)

type block = { instrs : Types.instr list; term : Types.term }

(** Region-boundary metadata filled in by the cWSP compiler: the recovery
    slice (Section VII) attached to a boundary id. Empty before the ckpt
    pass runs. *)
type func = {
  name : string;
  nparams : int;           (* parameters are registers 0 .. nparams-1 *)
  nregs : int;             (* virtual register count *)
  blocks : block array;    (* entry is blocks.(0) *)
}

type global = {
  gname : string;
  size : int;                       (* bytes; 8-byte aligned *)
  init : (int * int) list;          (* word-index -> initial value *)
}

type t = {
  globals : global list;
  funcs : (string * func) list;     (* ordered, for deterministic printing *)
  main : string;
}

let find_func t name = List.assoc_opt name t.funcs

let func_exn t name =
  match find_func t name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Prog.func_exn: no function %S" name)

let find_global t name =
  List.find_opt (fun g -> g.gname = name) t.globals

(** Replace (or add) a function, preserving order. *)
let with_func t f =
  let replaced = ref false in
  let funcs =
    List.map
      (fun (n, old) ->
        if n = f.name then (
          replaced := true;
          (n, f))
        else (n, old))
      t.funcs
  in
  if !replaced then { t with funcs } else { t with funcs = t.funcs @ [ (f.name, f) ] }

(** Apply [tr] to every function of the program. *)
let map_funcs tr t = { t with funcs = List.map (fun (n, f) -> (n, tr f)) t.funcs }

let iter_instrs f (fn : func) =
  Array.iteri
    (fun bi blk -> List.iteri (fun ii ins -> f bi ii ins) blk.instrs)
    fn.blocks

let fold_instrs f acc (fn : func) =
  let acc = ref acc in
  iter_instrs (fun bi ii ins -> acc := f !acc bi ii ins) fn;
  !acc

(** Static instruction count of a function (excluding terminators). *)
let instr_count fn = fold_instrs (fun n _ _ _ -> n + 1) 0 fn

let total_instr_count t =
  List.fold_left (fun n (_, f) -> n + instr_count f) 0 t.funcs

(** Highest boundary id used in the function, or -1. *)
let max_boundary_id fn =
  fold_instrs
    (fun m _ _ ins -> match ins with Types.Boundary id -> max m id | _ -> m)
    (-1) fn
