(** Interval hitting-set ("stabbing") used to choose in-block cut points.

    An antidependence pair (load at index [lo], store at index [hi]) inside
    one block is cut by a boundary inserted before any index c with
    [lo < c <= hi]. Choosing the minimum number of boundaries that cut all
    pairs is the classic interval-point-cover problem, optimally solved by
    the greedy sweep below — this is the paper's "hitting set algorithm to
    find the best partitioning strategy" (Section IV-A) specialized to
    straight-line code. *)

type interval = { lo : int; hi : int }

(** Returns the chosen cut indices, ascending; every interval [i] satisfies
    [i.lo < c <= i.hi] for some returned [c]. *)
let stab (intervals : interval list) : int list =
  let sorted = List.sort (fun a b -> compare a.hi b.hi) intervals in
  let cuts = ref [] in
  let last_cut = ref min_int in
  List.iter
    (fun itv ->
      if itv.lo >= itv.hi + 1 then invalid_arg "Hitting.stab: empty interval";
      let covered = itv.lo < !last_cut && !last_cut <= itv.hi in
      if not covered then begin
        last_cut := itv.hi;
        cuts := itv.hi :: !cuts
      end)
    sorted;
  List.rev !cuts
