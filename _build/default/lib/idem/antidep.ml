(** Memory-antidependence detection in the presence of region boundaries.

    A pair (load L, store S) is a *violation* when S may alias L and S can
    execute after L without a region boundary committing in between — that
    is exactly the situation that breaks idempotent re-execution
    (Section IV-A of the paper). [violations] is used both by the region
    formation pass (to decide where to cut) and by tests as an independent
    soundness checker. *)

open Cwsp_ir
open Cwsp_analysis

type position = { p_bi : int; p_ii : int }

type pair = {
  load : position;
  store : position;
  load_sym : Alias.sym;
  store_sym : Alias.sym;
}

let is_boundary = function Types.Boundary _ -> true | _ -> false

(* For each block: indices of boundary instructions, ascending. *)
let boundary_positions (fn : Prog.func) : int list array =
  Array.map
    (fun (blk : Prog.block) ->
      let r = ref [] in
      List.iteri (fun ii ins -> if is_boundary ins then r := ii :: !r) blk.instrs;
      List.rev !r)
    fn.blocks

(** Blocks enterable from the successors of [src] through boundary-free
    intermediate blocks. A returned block may itself contain boundaries;
    whether the target access sits before its first boundary is the
    caller's check. *)
let reachable_boundary_free (fn : Prog.func) has_boundary src : bool array =
  let n = Array.length fn.blocks in
  let entered = Array.make n false in
  let rec go bi =
    if not entered.(bi) then begin
      entered.(bi) <- true;
      if not has_boundary.(bi) then List.iter go (Cfg.successors fn bi)
    end
  in
  List.iter go (Cfg.successors fn src);
  entered

let violations (fn : Prog.func) : pair list =
  let accesses = Alias.accesses fn in
  let loads = List.filter (fun (a : Alias.access) -> a.reads) accesses in
  let stores = List.filter (fun (a : Alias.access) -> a.writes) accesses in
  if loads = [] || stores = [] then []
  else begin
    let boundaries = boundary_positions fn in
    let has_boundary = Array.map (fun l -> l <> []) boundaries in
    let n = Array.length fn.blocks in
    let reach_cache : bool array option array = Array.make n None in
    let reach bi =
      match reach_cache.(bi) with
      | Some r -> r
      | None ->
        let r = reachable_boundary_free fn has_boundary bi in
        reach_cache.(bi) <- Some r;
        r
    in
    let pairs = ref [] in
    List.iter
      (fun (l : Alias.access) ->
        List.iter
          (fun (s : Alias.access) ->
            let same_access = l.a_bi = s.a_bi && l.a_ii = s.a_ii in
            if (not same_access) && Alias.may_alias l.sym s.sym then begin
              let same_block =
                l.a_bi = s.a_bi && l.a_ii < s.a_ii
                && not
                     (List.exists
                        (fun b -> b > l.a_ii && b < s.a_ii)
                        boundaries.(l.a_bi))
              in
              let cross_block =
                (not (List.exists (fun b -> b > l.a_ii) boundaries.(l.a_bi)))
                && (reach l.a_bi).(s.a_bi)
                && not (List.exists (fun b -> b < s.a_ii) boundaries.(s.a_bi))
              in
              if same_block || cross_block then
                pairs :=
                  {
                    load = { p_bi = l.a_bi; p_ii = l.a_ii };
                    store = { p_bi = s.a_bi; p_ii = s.a_ii };
                    load_sym = l.sym;
                    store_sym = s.sym;
                  }
                  :: !pairs
            end)
          stores)
      loads;
    List.rev !pairs
  end

let pair_to_string (p : pair) =
  Printf.sprintf "load@(%d,%d) -> store@(%d,%d)" p.load.p_bi p.load.p_ii
    p.store.p_bi p.store.p_ii
