lib/idem/antidep.ml: Alias Array Cfg Cwsp_analysis Cwsp_ir List Printf Prog Types
