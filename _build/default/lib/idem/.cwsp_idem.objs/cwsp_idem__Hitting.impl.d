lib/idem/hitting.ml: List
