lib/idem/hitting.mli:
