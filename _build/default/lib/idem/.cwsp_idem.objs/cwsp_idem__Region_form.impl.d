lib/idem/region_form.ml: Antidep Array Cwsp_analysis Cwsp_ir Hashtbl Hitting List Loops Option Printf Prog Types
