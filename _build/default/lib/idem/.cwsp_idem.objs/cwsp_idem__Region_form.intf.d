lib/idem/region_form.mli: Cwsp_ir Prog
