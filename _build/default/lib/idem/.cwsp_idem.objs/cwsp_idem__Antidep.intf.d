lib/idem/antidep.mli: Alias Cwsp_analysis Cwsp_ir Prog
