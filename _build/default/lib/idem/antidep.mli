(** Memory-antidependence detection in the presence of region boundaries.

    A pair (load L, store S) is a {e violation} when S may alias L and S
    can execute after L without a region boundary committing in between —
    exactly what breaks idempotent re-execution (Section IV-A).
    [violations] is used both by region formation (to decide where to
    cut) and by tests as an independent soundness checker. *)

open Cwsp_ir
open Cwsp_analysis

type position = { p_bi : int; p_ii : int }

type pair = {
  load : position;
  store : position;
  load_sym : Alias.sym;
  store_sym : Alias.sym;
}

(** Per-block indices of boundary instructions, ascending. *)
val boundary_positions : Prog.func -> int list array

(** All remaining antidependence violations of the function. *)
val violations : Prog.func -> pair list

val pair_to_string : pair -> string
