(** Interval hitting-set ("stabbing") used to choose in-block cut points —
    the paper's "hitting set algorithm to find the best partitioning
    strategy" (Section IV-A) specialized to straight-line code. *)

(** An antidependence pair: load at index [lo], store at index [hi]; a
    boundary before any index c with [lo < c <= hi] cuts it. *)
type interval = { lo : int; hi : int }

(** Minimum cut indices (greedy sweep, optimal for intervals), ascending;
    every interval is stabbed. Raises [Invalid_argument] on an empty
    interval. *)
val stab : interval list -> int list
