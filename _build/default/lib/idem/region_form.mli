(** Idempotent region formation (De Kruijf-style, Section IV-A).

    Phase 1 places initial boundaries: at function entry, at every loop
    header (one region per iteration), after call sites and around every
    synchronization point. Phase 2 iteratively cuts remaining memory
    antidependences: in-block pairs via the optimal interval hitting set,
    cross-block pairs by a boundary directly before the offending store.
    The result satisfies [Antidep.violations fn = []]. *)

open Cwsp_ir

(** Partition one function; pre-existing (manually placed) boundaries are
    kept. Raises [Failure] if cutting fails to converge. *)
val run_func : Prog.func -> Prog.func

(** Partition every function of the program — user code, runtime library
    and kernel-entry path alike (Section IV-D). *)
val run : Prog.t -> Prog.t

(** Static region count (= number of boundaries). *)
val boundary_count : Prog.func -> int
