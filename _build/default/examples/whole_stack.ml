(** Whole-system persistence across the user/kernel boundary
    (Sections IV-D and VI of the paper).

    A user program pushes records through [entry_syscall_64] (the
    hand-annotated "assembly" stub) into the kernel's file state, with
    power failures injected inside the syscall path itself: in the entry
    stub, the dispatcher, the sys_write handler and the allocator. Crash
    consistency must hold across all of them because *every* layer is
    partitioned into recoverable regions.

    Run with: dune exec examples/whole_stack.exe *)

open Cwsp_ir

let build () =
  let b = Builder.program () in
  Cwsp_runtime.Libc.add b;
  Cwsp_runtime.Kernel.add b;
  Builder.global b "record" ~size:64 ();
  Builder.global b "inbox" ~size:64 ();
  Builder.global b "checksum" ~size:8 ();
  Builder.func b "main" ~nparams:0 (fun fb ->
      let open Builder in
      let rc = la fb "record" in
      let inbox = la fb "inbox" in
      (* write 40 records through the kernel, reading some back *)
      let _ =
        loop fb ~from:(Imm 0) ~below:(Imm 40) (fun i ->
            (* build a record in a malloc'd staging buffer *)
            let buf = call fb "malloc" [ Imm 16 ] in
            store fb buf 0 (Reg i);
            store fb buf 8 (Reg (bin fb Mul (Reg i) (Reg i)));
            let _ = call fb "memcpy" [ Reg rc; Reg buf; Imm 16 ] in
            call_void fb "free" [ Reg buf ];
            let _ =
              call fb "entry_syscall_64"
                [ Imm Cwsp_runtime.Kernel.sys_write_no; Reg rc; Imm 2 ]
            in
            let _ =
              call fb "entry_syscall_64"
                [ Imm Cwsp_runtime.Kernel.sys_read_no; Reg inbox; Imm 1 ]
            in
            ())
      in
      let pid =
        call fb "entry_syscall_64"
          [ Imm Cwsp_runtime.Kernel.sys_getpid_no; Reg rc; Imm 0 ]
      in
      let v = load fb inbox 0 in
      let ck = la fb "checksum" in
      store fb ck 0 (Reg (add fb (Reg v) (Reg pid)));
      call_void fb "__out" [ Reg pid ];
      ret fb None);
  Builder.set_main b "main";
  Builder.finish b

let () =
  let prog = build () in
  let compiled =
    Cwsp_compiler.Pipeline.compile ~config:Cwsp_compiler.Pipeline.cwsp prog
  in
  print_endline "regions per layer of the stack:";
  List.iter
    (fun (r : Cwsp_compiler.Pipeline.func_report) ->
      let layer =
        if List.mem r.fr_name Cwsp_runtime.Kernel.function_names then "kernel"
        else if List.mem r.fr_name Cwsp_runtime.Libc.function_names then "libc"
        else "user"
      in
      Printf.printf "  %-6s %-20s %3d regions, %2d checkpoints kept\n" layer
        r.fr_name r.static_regions r.ckpts_kept)
    compiled.reports;

  print_endline "\nmanually annotated syscall entry stub (Fig. 11):";
  print_string (Pp.func_str (Prog.func_exn compiled.prog "entry_syscall_64"));

  (* attribute each dynamic instruction to a layer, then crash inside the
     kernel-heavy band *)
  let _, tr = Cwsp_interp.Machine.trace_of_program compiled.prog in
  let total = Cwsp_interp.Trace.length tr in
  let failures = ref 0 and runs = ref 0 in
  for i = 0 to 299 do
    incr runs;
    let crash_at = 1 + (i * (total - 2) / 300) in
    match Cwsp_recovery.Harness.validate ~seed:i ~crash_at compiled with
    | Ok _ -> ()
    | Error e ->
      incr failures;
      Printf.printf "  FAIL: %s\n" e
  done;
  Printf.printf
    "\n%d power failures across user code, libc and the kernel path: %d \
     inconsistencies\n"
    !runs !failures
