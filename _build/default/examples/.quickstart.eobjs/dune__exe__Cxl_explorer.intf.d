examples/cxl_explorer.mli:
