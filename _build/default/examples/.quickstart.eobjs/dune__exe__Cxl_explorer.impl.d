examples/cxl_explorer.ml: Arg Cmd Cmdliner Config Cwsp_core Cwsp_schemes Cwsp_sim Cwsp_util Cwsp_workloads List Nvm Printf Term
