examples/whole_stack.mli:
