examples/whole_stack.ml: Builder Cwsp_compiler Cwsp_interp Cwsp_ir Cwsp_recovery Cwsp_runtime List Pp Printf Prog
