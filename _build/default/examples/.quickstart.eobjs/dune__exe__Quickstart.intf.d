examples/quickstart.mli:
