examples/quickstart.ml: Builder Cwsp_compiler Cwsp_interp Cwsp_ir Cwsp_recovery Cwsp_runtime Cwsp_sim List Printf String Types
