(** The paper's motivating example (Section I): inserting a node at the
    head of a doubly-linked list is two stores — new->next = head and
    head->prev = new — and a power failure between their persists leaves
    a dangling pointer under naive NVM usage.

    This example builds exactly that workload, compiles it with cWSP,
    cuts power *inside* insertions at every possible instruction, runs
    the recovery protocol and verifies the list is intact every time.

    Run with: dune exec examples/crash_recovery.exe *)

open Cwsp_ir

let n_inserts = 200

(* Node layout: [0]=value, [8]=next, [16]=prev. "head" holds the list
   head pointer; "checksum" the final walk result. *)
let build () =
  let b = Builder.program () in
  Cwsp_runtime.Libc.add b;
  Builder.global b "head" ~size:8 ();
  Builder.global b "checksum" ~size:8 ();
  Builder.func b "insert_front" ~nparams:1 (fun fb ->
      let open Builder in
      let v = param fb 0 in
      let node = call fb "malloc" [ Imm 24 ] in
      store fb node 0 (Reg v);
      let headp = la fb "head" in
      let old = load fb headp 0 in
      (* (1) new node's next points at the old head *)
      store fb node 8 (Reg old);
      store fb node 16 (Imm 0);
      (* (2) old head's prev points back at the new node *)
      let old_nonnull = cmp fb Types.Ne (Reg old) (Imm 0) in
      if_ fb old_nonnull
        ~then_:(fun () -> store fb old 16 (Reg node))
        ~else_:(fun () -> ());
      store fb headp 0 (Reg node);
      ret fb None);
  Builder.func b "walk" ~nparams:0 (fun fb ->
      let open Builder in
      let headp = la fb "head" in
      let cur = fresh fb in
      emit fb (Types.Load (cur, headp, 0));
      let acc = imm fb 0 in
      let loop_head = block fb in
      let body = block fb in
      let exit_l = block fb in
      jmp fb loop_head;
      switch_to fb loop_head;
      let nz = cmp fb Types.Ne (Reg cur) (Imm 0) in
      br fb nz ~ifso:body ~ifnot:exit_l;
      switch_to fb body;
      let v = load fb cur 0 in
      emit fb (Types.Bin (Add, acc, Reg acc, Reg v));
      (* integrity check: cur->next->prev == cur *)
      let nxt = load fb cur 8 in
      let nn = cmp fb Types.Ne (Reg nxt) (Imm 0) in
      if_ fb nn
        ~then_:(fun () ->
          let back = load fb nxt 16 in
          let okc = cmp fb Types.Eq (Reg back) (Reg cur) in
          emit fb (Types.Bin (Mul, acc, Reg acc, Reg okc));
          emit fb (Types.Bin (Add, acc, Reg acc, Reg v)))
        ~else_:(fun () -> ());
      emit fb (Types.Mov (cur, Reg nxt));
      jmp fb loop_head;
      switch_to fb exit_l;
      ret fb (Some (Reg acc)));
  Builder.func b "main" ~nparams:0 (fun fb ->
      let open Builder in
      let _ =
        loop fb ~from:(Imm 1) ~below:(Imm (n_inserts + 1)) (fun i ->
            call_void fb "insert_front" [ Reg i ])
      in
      let sum = call fb "walk" [] in
      let ck = la fb "checksum" in
      store fb ck 0 (Reg sum);
      call_void fb "__out" [ Reg sum ];
      ret fb None);
  Builder.set_main b "main";
  Builder.finish b

let () =
  let prog = build () in
  let compiled =
    Cwsp_compiler.Pipeline.compile ~config:Cwsp_compiler.Pipeline.cwsp prog
  in
  Printf.printf "doubly-linked list with %d front-insertions\n" n_inserts;
  Printf.printf "compiled into %d recoverable regions\n"
    (Cwsp_compiler.Pipeline.nboundaries compiled);

  (* show the compiler's work on the critical function *)
  let fn = Prog.func_exn compiled.prog "insert_front" in
  Printf.printf "\ninstrumented insert_front:\n%s\n" (Pp.func_str fn);

  (* golden run *)
  let golden = Cwsp_interp.Machine.run_functional compiled.prog in
  let expected = List.hd (Cwsp_interp.Machine.outputs golden) in
  Printf.printf "failure-free checksum: %d\n" expected;

  (* crash at EVERY instruction of a band covering several insertions,
     plus a coarse sweep over the whole execution *)
  let _, tr = Cwsp_interp.Machine.trace_of_program compiled.prog in
  let total = Cwsp_interp.Trace.length tr in
  let failures = ref 0 and runs = ref 0 in
  let try_crash crash_at seed =
    incr runs;
    match Cwsp_recovery.Harness.validate ~seed ~crash_at compiled with
    | Ok _ -> ()
    | Error e ->
      incr failures;
      if !failures <= 3 then Printf.printf "  INCONSISTENT: %s\n" e
  in
  (* dense band in the middle of the insertion loop *)
  for crash_at = total / 2 to (total / 2) + 400 do
    try_crash crash_at crash_at
  done;
  (* coarse sweep over everything, several persist orderings each *)
  for i = 0 to 99 do
    let crash_at = 1 + (i * (total - 2) / 100) in
    for seed = 0 to 2 do
      try_crash crash_at ((1000 * i) + seed)
    done
  done;
  Printf.printf
    "\ninjected %d power failures (every instruction of a 400-instruction\n\
     band plus a 100-point sweep, 3 persist orderings each): %d inconsistencies\n"
    !runs !failures;
  if !failures = 0 then
    print_endline "the dangling-pointer hazard of Section I is fully closed."
