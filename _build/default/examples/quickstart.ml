(** Quickstart: compile a small program with the cWSP pipeline, look at
    what the compiler did, run it, and time it against the baseline.

    Run with: dune exec examples/quickstart.exe *)

open Cwsp_ir

(* A little program: fill an array, then sum it through a function call. *)
let build () =
  let b = Builder.program () in
  Cwsp_runtime.Libc.add b;
  Cwsp_runtime.Kernel.add b;
  Builder.global b "data" ~size:(512 * 8) ();
  Builder.func b "sum" ~nparams:2 (fun fb ->
      let open Builder in
      let arr = param fb 0 and n = param fb 1 in
      let acc = imm fb 0 in
      let _ =
        loop fb ~from:(Imm 0) ~below:(Reg n) (fun i ->
            let v = load fb (bin fb Add (Reg arr) (Reg (bin fb Shl (Reg i) (Imm 3)))) 0 in
            emit fb (Types.Bin (Add, acc, Reg acc, Reg v)))
      in
      ret fb (Some (Reg acc)));
  Builder.func b "main" ~nparams:0 (fun fb ->
      let open Builder in
      let arr = la fb "data" in
      let _ =
        loop fb ~from:(Imm 0) ~below:(Imm 512) (fun i ->
            store fb (bin fb Add (Reg arr) (Reg (bin fb Shl (Reg i) (Imm 3)))) 0 (Reg i))
      in
      let total = call fb "sum" [ Reg arr; Imm 512 ] in
      call_void fb "__out" [ Reg total ];
      ret fb None);
  Builder.set_main b "main";
  Builder.finish b

let () =
  let prog = build () in

  (* 1. compile: idempotent region formation + checkpoint insertion +
        pruning + recovery-slice construction *)
  let compiled =
    Cwsp_compiler.Pipeline.compile ~config:Cwsp_compiler.Pipeline.cwsp prog
  in
  print_string (Cwsp_compiler.Pipeline.report_to_string compiled);

  (* 2. the instrumented binary behaves exactly like the original *)
  let m = Cwsp_interp.Machine.run_functional compiled.prog in
  Printf.printf "\nprogram output: %s (expected %d)\n"
    (String.concat "," (List.map string_of_int (Cwsp_interp.Machine.outputs m)))
    (511 * 512 / 2);

  (* 3. trace once, replay under the baseline and under cWSP hardware *)
  let baseline =
    Cwsp_compiler.Pipeline.compile ~config:Cwsp_compiler.Pipeline.baseline prog
  in
  let _, tr_base = Cwsp_interp.Machine.trace_of_program baseline.prog in
  let _, tr_cwsp = Cwsp_interp.Machine.trace_of_program compiled.prog in
  let cfg = Cwsp_sim.Config.default in
  let st_base = Cwsp_sim.Engine.run_trace cfg Cwsp_sim.Engine.Baseline tr_base in
  let st_cwsp =
    Cwsp_sim.Engine.run_trace cfg (Cwsp_sim.Engine.Cwsp Cwsp_sim.Engine.cwsp_full) tr_cwsp
  in
  Printf.printf "baseline: %.0f ns;  cWSP: %.0f ns;  overhead: %.1f%%\n"
    st_base.elapsed_ns st_cwsp.elapsed_ns
    (100.0 *. (Cwsp_sim.Stats.slowdown st_cwsp ~baseline:st_base -. 1.0));

  (* 4. cut power at a few points and check crash consistency *)
  let total = Cwsp_interp.Trace.length tr_cwsp in
  let ok = ref 0 in
  let points = 20 in
  for i = 0 to points - 1 do
    let crash_at = 1 + (i * (total - 2) / points) in
    match Cwsp_recovery.Harness.validate ~seed:i ~crash_at compiled with
    | Ok _ -> incr ok
    | Error e -> Printf.printf "recovery FAILED: %s\n" e
  done;
  Printf.printf "crash recovery: %d/%d power-failure points recovered bit-exactly\n"
    !ok points
