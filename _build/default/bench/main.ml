(** The benchmark harness: regenerates every table and figure of the
    paper's evaluation (Section IX) and runs Bechamel micro-benchmarks of
    this repository's own machinery.

    Usage:
      dune exec bench/main.exe               # every figure + microbenches
      dune exec bench/main.exe -- list       # list experiment ids
      dune exec bench/main.exe -- fig13 hw   # selected experiments only
      dune exec bench/main.exe -- bechamel   # microbenches only

    Absolute numbers will not match the paper (the substrate is a
    deterministic OCaml simulator, not gem5 + x86 hardware); the shapes —
    who wins, by roughly what factor, where the knees are — are the
    reproduction target. EXPERIMENTS.md records paper-vs-measured per
    figure. *)

open Cwsp_experiments

(* ---- Bechamel micro-benchmarks of the infrastructure itself ---- *)

let microbenches () =
  let open Bechamel in
  let open Toolkit in
  let w = Cwsp_workloads.Registry.find_exn "sjeng" in
  let prog = w.build ~scale:1 in
  let compiled =
    Cwsp_compiler.Pipeline.compile ~config:Cwsp_compiler.Pipeline.cwsp prog
  in
  let trace =
    let _, t = Cwsp_interp.Machine.trace_of_program compiled.prog in
    t
  in
  let tests =
    [
      Test.make ~name:"compile:cwsp-pipeline(sjeng)"
        (Staged.stage (fun () ->
             ignore
               (Cwsp_compiler.Pipeline.compile
                  ~config:Cwsp_compiler.Pipeline.cwsp prog)));
      Test.make ~name:"interp:trace-generation(sjeng)"
        (Staged.stage (fun () ->
             ignore (Cwsp_interp.Machine.trace_of_program compiled.prog)));
      Test.make ~name:"engine:replay-cwsp(sjeng)"
        (Staged.stage (fun () ->
             ignore
               (Cwsp_sim.Engine.run_trace Cwsp_sim.Config.default
                  (Cwsp_sim.Engine.Cwsp Cwsp_sim.Engine.cwsp_full)
                  trace)));
      Test.make ~name:"engine:replay-baseline(sjeng)"
        (Staged.stage (fun () ->
             ignore
               (Cwsp_sim.Engine.run_trace Cwsp_sim.Config.default
                  Cwsp_sim.Engine.Baseline trace)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) () in
  Printf.printf "\nBechamel micro-benchmarks (per-call wall time)\n";
  Printf.printf "----------------------------------------------\n";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ Instance.monotonic_clock ] test in
      let ols =
        Analyze.all
          (Analyze.ols ~r_square:false ~bootstrap:0
             ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ ns ] -> Printf.printf "%-36s %12.0f ns\n" name ns
          | _ -> Printf.printf "%-36s (no estimate)\n" name)
        ols)
    tests

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] ->
    Index.run_all ();
    microbenches ()
  | [ "list" ] ->
    List.iter (fun (e : Index.entry) -> Printf.printf "%-10s %s\n" e.id e.etitle)
      Index.all;
    print_endline "bechamel   Bechamel micro-benchmarks"
  | [ "bechamel" ] -> microbenches ()
  | ids ->
    List.iter
      (fun id ->
        if id = "bechamel" then microbenches ()
        else
          match Index.find id with
          | Some e -> e.erun ()
          | None ->
            Printf.eprintf "unknown experiment %S (try 'list')\n" id;
            exit 1)
      ids
