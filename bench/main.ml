(** The benchmark harness: regenerates every table and figure of the
    paper's evaluation (Section IX) and runs Bechamel micro-benchmarks of
    this repository's own machinery.

    Usage:
      dune exec bench/main.exe                    # every figure + microbenches
      dune exec bench/main.exe -- list            # list experiment ids
      dune exec bench/main.exe -- fig13 hw        # selected experiments only
      dune exec bench/main.exe -- --jobs 4        # domain-parallel execution
      dune exec bench/main.exe -- json [id..]     # timed run -> BENCH_<run>.json
      dune exec bench/main.exe -- compare A B     # perf trajectory A -> B
      dune exec bench/main.exe -- bechamel        # microbenches only

    [--jobs N] sets the executor's domain-pool width for every
    experiment plan (plan/execute/render split, DESIGN.md §5); the
    rendered output is byte-identical for any N. [json] runs each
    experiment separately, timing it, and writes per-experiment
    wall-clock, overall elapsed time and headline numbers to
    BENCH_<timestamp>.json so the perf trajectory stays machine-readable
    across PRs.

    Absolute numbers will not match the paper (the substrate is a
    deterministic OCaml simulator, not gem5 + x86 hardware); the shapes —
    who wins, by roughly what factor, where the knees are — are the
    reproduction target. EXPERIMENTS.md records paper-vs-measured per
    figure. *)

open Cwsp_experiments

(* ---- Bechamel micro-benchmarks of the infrastructure itself ---- *)

let microbenches () =
  let open Bechamel in
  let open Toolkit in
  let w = Cwsp_workloads.Registry.find_exn "sjeng" in
  let prog = w.build ~scale:1 in
  let compiled =
    Cwsp_compiler.Pipeline.compile ~config:Cwsp_compiler.Pipeline.cwsp prog
  in
  let trace =
    let _, t = Cwsp_interp.Machine.trace_of_program compiled.prog in
    t
  in
  let tests =
    [
      Test.make ~name:"compile:cwsp-pipeline(sjeng)"
        (Staged.stage (fun () ->
             ignore
               (Cwsp_compiler.Pipeline.compile
                  ~config:Cwsp_compiler.Pipeline.cwsp prog)));
      Test.make ~name:"interp:trace-generation(sjeng)"
        (Staged.stage (fun () ->
             ignore (Cwsp_interp.Machine.trace_of_program compiled.prog)));
      Test.make ~name:"engine:replay-cwsp(sjeng)"
        (Staged.stage (fun () ->
             ignore
               (Cwsp_sim.Engine.run_trace Cwsp_sim.Config.default
                  (Cwsp_sim.Engine.Cwsp Cwsp_sim.Engine.cwsp_full)
                  trace)));
      Test.make ~name:"engine:replay-baseline(sjeng)"
        (Staged.stage (fun () ->
             ignore
               (Cwsp_sim.Engine.run_trace Cwsp_sim.Config.default
                  Cwsp_sim.Engine.Baseline trace)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) () in
  Printf.printf "\nBechamel micro-benchmarks (per-call wall time)\n";
  Printf.printf "----------------------------------------------\n";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ Instance.monotonic_clock ] test in
      let ols =
        Analyze.all
          (Analyze.ols ~r_square:false ~bootstrap:0
             ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ ns ] -> Printf.printf "%-36s %12.0f ns\n" name ns
          | _ -> Printf.printf "%-36s (no estimate)\n" name)
        ols)
    tests

(* ---- machine-readable timing runs ---- *)

(* Per-experiment wall-clock samples collected across this process's
   timed runs; the end-of-run summary reports the tail (through p999,
   the ROADMAP tail-latency item) on stderr. 1-2-5 grid, 1ms..2000s. *)
let wall_hist =
  Cwsp_util.Stats.Histogram.create
    [|
      0.001; 0.002; 0.005; 0.01; 0.02; 0.05; 0.1; 0.2; 0.5; 1.0; 2.0; 5.0;
      10.0; 20.0; 50.0; 100.0; 200.0; 500.0; 1000.0; 2000.0;
    |]

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Run every experiment (or the [ids] subset) separately, timing
    plan+execute+render, and write BENCH_<timestamp>.json. *)
let json_run ~jobs ?(ids = []) () =
  let selected =
    if ids = [] then Index.all
    else
      List.map
        (fun id ->
          match Index.find id with
          | Some e -> e
          | None ->
            Printf.eprintf "unknown experiment %S (try 'list')\n" id;
            exit 1)
        ids
  in
  let t_all0 = Unix.gettimeofday () in
  let results =
    List.map
      (fun (x : Index.entry) ->
        let t0 = Unix.gettimeofday () in
        let headline = Index.run_one x in
        let dt = Unix.gettimeofday () -. t0 in
        Cwsp_util.Stats.Histogram.add wall_hist dt;
        (x, dt, headline))
      selected
  in
  let overall = Unix.gettimeofday () -. t_all0 in
  let tm = Unix.localtime t_all0 in
  let run_id =
    Printf.sprintf "%04d%02d%02d_%02d%02d%02d" (tm.tm_year + 1900)
      (tm.tm_mon + 1) tm.tm_mday tm.tm_hour tm.tm_min tm.tm_sec
  in
  let path = Printf.sprintf "BENCH_%s.json" run_id in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"run\": \"%s\",\n  \"jobs\": %d,\n" run_id jobs;
  Printf.fprintf oc "  \"overall_elapsed_s\": %.3f,\n" overall;
  Printf.fprintf oc "  \"experiments\": [\n";
  List.iteri
    (fun i ((x : Index.entry), dt, headline) ->
      Printf.fprintf oc
        "    {\"id\": \"%s\", \"title\": \"%s\", \"wall_s\": %.3f, \
         \"headline\": %s}%s\n"
        (json_escape x.id) (json_escape x.etitle) dt
        (match headline with
        | Some h when Float.is_finite h -> Printf.sprintf "%.6g" h
        | Some _ | None -> "null")
        (if i = List.length results - 1 then "" else ","))
    results;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "\nwrote %s (overall %.1fs, %d experiments, jobs=%d)\n" path
    overall (List.length results) jobs

(* ---- perf trajectory across every committed BENCH json file ---- *)

(** [history ()]: fold all BENCH_*.json files in the working directory
    (run ids sort chronologically) into one per-experiment trajectory
    table — wall seconds and headline per run — so the whole perf
    history is readable at a glance without pairwise [compare] calls. *)
let history () =
  let files =
    Sys.readdir "." |> Array.to_list
    |> List.filter (fun f ->
           String.starts_with ~prefix:"BENCH_" f
           && Filename.check_suffix f ".json")
    |> List.sort compare
  in
  if files = [] then begin
    Printf.eprintf "history: no BENCH_*.json files in %s\n" (Sys.getcwd ());
    exit 1
  end;
  let runs =
    List.filter_map
      (fun path ->
        match Bjson.of_file path with
        | exception _ ->
          Printf.eprintf "history: skipping unreadable %s\n" path;
          None
        | j ->
          let run =
            Option.value ~default:(Filename.remove_extension path)
              (Option.bind (Bjson.member "run" j) Bjson.to_string_opt)
          in
          let exps =
            List.filter_map
              (fun e ->
                match Option.bind (Bjson.member "id" e) Bjson.to_string_opt with
                | None -> None
                | Some id ->
                  let wall =
                    Option.bind (Bjson.member "wall_s" e) Bjson.to_float_opt
                  in
                  let headline =
                    Option.bind (Bjson.member "headline" e) Bjson.to_float_opt
                  in
                  Some (id, (wall, headline)))
              (Bjson.to_list
                 (Option.value ~default:(Bjson.List [])
                    (Bjson.member "experiments" j)))
          in
          Some (run, exps))
      files
  in
  (* experiment rows in first-appearance order across runs *)
  let ids = ref [] in
  List.iter
    (fun (_, exps) ->
      List.iter
        (fun (id, _) -> if not (List.mem id !ids) then ids := id :: !ids)
        exps)
    runs;
  let ids = List.rev !ids in
  let cell (wall, headline) =
    let h = match headline with Some h -> Printf.sprintf "%.4g" h | None -> "-" in
    match wall with
    | Some w -> Printf.sprintf "%.1fs %s" w h
    | None -> "- " ^ h
  in
  Printf.printf "perf history: %d runs, %d experiments (cell = wall, headline)\n\n"
    (List.length runs) (List.length ids);
  Cwsp_util.Table.print
    ~headers:("experiment" :: List.map fst runs)
    (List.map
       (fun id ->
         id
         :: List.map
              (fun (_, exps) ->
                match List.assoc_opt id exps with
                | None -> "-"
                | Some v -> cell v)
              runs)
       ids);
  (* total wall across the runs' joined experiments, oldest -> newest *)
  Printf.printf "\ntotal wall: %s\n"
    (String.concat " -> "
       (List.map
          (fun (_, exps) ->
            let t =
              List.fold_left
                (fun acc (_, (w, _)) -> acc +. Option.value ~default:0.0 w)
                0.0 exps
            in
            Printf.sprintf "%.1fs" t)
          runs))

(* ---- perf-trajectory comparison of two BENCH json files ---- *)

(** [compare_runs old new]: per-experiment wall/headline delta table
    (joined on id), then a verdict. Exit code 1 when the total wall
    over the joined experiments regresses by more than 10% or any
    headline drifts (an experiment gaining a headline it previously
    lacked is progress, not drift). *)
let compare_runs old_path new_path =
  let load path =
    let j = Bjson.of_file path in
    let exps =
      Option.value ~default:(Bjson.List []) (Bjson.member "experiments" j)
    in
    List.filter_map
      (fun e ->
        match Option.bind (Bjson.member "id" e) Bjson.to_string_opt with
        | None -> None
        | Some id ->
          let wall =
            Option.value ~default:0.0
              (Option.bind (Bjson.member "wall_s" e) Bjson.to_float_opt)
          in
          let headline = Option.bind (Bjson.member "headline" e) Bjson.to_float_opt in
          Some (id, (wall, headline)))
      (Bjson.to_list exps)
  in
  let old_run = load old_path and new_run = load new_path in
  let fmt_h = function Some h -> Printf.sprintf "%.4g" h | None -> "-" in
  let drifted = ref [] in
  let dropped = ref 0 in
  let wall_old = ref 0.0 and wall_new = ref 0.0 in
  let rows =
    List.filter_map
      (fun (id, (ow, oh)) ->
        match List.assoc_opt id new_run with
        | None ->
          incr dropped;
          Some [ id; Cwsp_util.Table.f2 ow; "-"; "-"; fmt_h oh; "-"; "dropped" ]
        | Some (nw, nh) ->
          wall_old := !wall_old +. ow;
          wall_new := !wall_new +. nw;
          let speedup = if nw > 0.0 then ow /. nw else Float.infinity in
          let drift =
            match (oh, nh) with
            | Some a, Some b ->
              Float.abs (b -. a) > 1e-6 *. Float.max 1.0 (Float.abs a)
            | Some _, None -> true (* lost a headline *)
            | None, _ -> false (* gaining one is progress *)
          in
          if drift then drifted := id :: !drifted;
          Some
            [
              id;
              Cwsp_util.Table.f2 ow;
              Cwsp_util.Table.f2 nw;
              Printf.sprintf "%.2fx" speedup;
              fmt_h oh;
              fmt_h nh;
              (if drift then "DRIFT" else "ok");
            ])
      old_run
  in
  let added =
    List.filter (fun (id, _) -> List.assoc_opt id old_run = None) new_run
    |> List.map (fun (id, (nw, nh)) ->
           [ id; "-"; Cwsp_util.Table.f2 nw; "-"; "-"; fmt_h nh; "added" ])
  in
  Printf.printf "perf trajectory: %s -> %s\n\n" old_path new_path;
  Cwsp_util.Table.print
    ~headers:[ "experiment"; "old s"; "new s"; "speedup"; "old headline";
               "new headline"; "verdict" ]
    (rows @ added);
  let ratio = if !wall_old > 0.0 then !wall_new /. !wall_old else 1.0 in
  Printf.printf "\ntotal wall (joined): %.1fs -> %.1fs (%.2fx)\n" !wall_old
    !wall_new
    (if !wall_new > 0.0 then !wall_old /. !wall_new else Float.infinity);
  (* wall comparison is only meaningful when both runs covered the same
     experiments: a subset run pays cold-cache costs that a full run
     amortizes across experiments, so partial joins gate on headline
     drift only *)
  let same_coverage = added = [] && !dropped = 0 in
  let wall_regressed = same_coverage && ratio > 1.10 in
  if wall_regressed then
    Printf.printf "FAIL: total wall regressed by %.0f%% (>10%% budget)\n"
      ((ratio -. 1.0) *. 100.0);
  if not same_coverage then
    Printf.printf
      "note: coverage differs (subset run) — wall gate skipped, headline \
       gate active\n";
  if !drifted <> [] then
    Printf.printf "FAIL: headline drift in: %s\n"
      (String.concat ", " (List.rev !drifted));
  if wall_regressed || !drifted <> [] then exit 1;
  Printf.printf "OK: no wall regression, no headline drift\n"

(* ---- CLI ---- *)

(* End-of-run summary of the shared memo stores (satellite of the obs
   work): hit/miss/race totals per cache, on stderr so every rendered
   figure on stdout stays byte-identical to the golden output. *)
let print_cache_summary () =
  Printf.eprintf "cache summary:";
  List.iter
    (fun (name, (st : Cwsp_core.Store.stats), entries) ->
      Printf.eprintf " %s %d entries, %d hits, %d misses, %d races;" name
        entries st.hits st.misses st.races)
    (Cwsp_core.Api.cache_stats ());
  Printf.eprintf "\n";
  if Cwsp_util.Stats.Histogram.count wall_hist > 0 then
    Printf.eprintf "experiment wall: %s\n"
      (Cwsp_util.Stats.Histogram.summary wall_hist)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* pull out --jobs N / --trace FILE / --metrics FILE; remaining words
     select modes/experiments *)
  let jobs = ref 1 in
  let trace = ref None in
  let metrics = ref None in
  let rec strip = function
    | [] -> []
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
      | Some v when v >= 1 -> jobs := v
      | _ ->
        Printf.eprintf "--jobs expects a positive integer, got %S\n" n;
        exit 1);
      strip rest
    | "--trace" :: f :: rest ->
      trace := Some f;
      strip rest
    | "--metrics" :: f :: rest ->
      metrics := Some f;
      strip rest
    | [ ("--jobs" | "--trace" | "--metrics") ] ->
      Printf.eprintf "--jobs/--trace/--metrics expect an argument\n";
      exit 1
    | x :: rest -> x :: strip rest
  in
  let args = strip args in
  Cwsp_core.Executor.set_default_jobs !jobs;
  Cwsp_obs.Obs.configure ?trace:!trace ?metrics:!metrics ();
  (match args with
  | [] ->
    Index.run_all ();
    microbenches ()
  | [ "list" ] ->
    List.iter (fun (e : Index.entry) -> Printf.printf "%-10s %s\n" e.id e.etitle)
      Index.all;
    print_endline "bechamel   Bechamel micro-benchmarks";
    print_endline "json       timed full run -> BENCH_<run>.json";
    print_endline "compare    delta table of two BENCH json files";
    print_endline "history    trajectory table over all BENCH_*.json"
  | [ "bechamel" ] -> microbenches ()
  | "json" :: ids -> json_run ~jobs:!jobs ~ids ()
  | [ "history" ] ->
    history ();
    exit 0
  | [ "compare"; old_path; new_path ] ->
    compare_runs old_path new_path;
    exit 0
  | "compare" :: _ ->
    Printf.eprintf "compare expects exactly two BENCH json paths\n";
    exit 1
  | ids ->
    List.iter
      (fun id ->
        if id = "bechamel" then microbenches ()
        else
          match Index.find id with
          | Some e -> ignore (Index.run_one e)
          | None ->
            Printf.eprintf "unknown experiment %S (try 'list')\n" id;
            exit 1)
      ids);
  print_cache_summary ();
  Cwsp_obs.Obs.finalize ()
