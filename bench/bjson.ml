(** Minimal JSON reader for the BENCH_<run>.json files this harness
    writes (objects, arrays, strings, numbers, null, bools — no
    dependencies, since the repo vendors nothing). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected %C, got %C" c (peek ()))
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          (* BENCH files only escape control chars; decode as a byte *)
          if !pos + 4 >= n then fail "truncated \\u escape";
          let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
          Buffer.add_char buf (Char.chr (code land 0xff));
          pos := !pos + 4
        | c -> fail (Printf.sprintf "bad escape %C" c));
        advance ();
        go ()
      | '\255' -> fail "unterminated string"
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while num_char (peek ()) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then (
        advance ();
        Obj [])
      else
        let rec members acc =
          skip_ws ();
          let k = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ((k, v) :: acc)
          | '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then (
        advance ();
        List [])
      else
        let rec elements acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            elements (v :: acc)
          | ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
    | '"' -> Str (string_body ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> number () |> fun f -> Num f
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let of_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  parse s

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_list = function List xs -> xs | _ -> []
let to_string_opt = function Str s -> Some s | _ -> None
let to_float_opt = function Num f -> Some f | _ -> None
